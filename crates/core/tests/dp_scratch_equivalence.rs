//! Bitwise equivalence of the windowed, flat-arena DP cores against the
//! pre-optimization reference implementations.
//!
//! The reference cores below are verbatim copies of the original textbook
//! `O(n²·q)` scans over nested `Vec<Vec<_>>` tables (ascending split scan,
//! strict-improvement argmin, per-solve allocation). The optimized cores in
//! `cpo_core::dp` — monotone work-window pruning, descending early-stop
//! scans, incremental mode frontiers, reused `DpScratch` arenas — must
//! reproduce them **bit for bit**: every `best` value, every `exact_k`
//! entry and every reconstructed partition, on random instances, both
//! communication models, feasible and infeasible thresholds, with one
//! scratch reused across wildly different instances.

// The reference cores are intentionally verbatim copies of the original
// textbook loops — do not "modernize" them.
#![allow(clippy::needless_range_loop, clippy::type_complexity)]

use cpo_core::dp::{
    energy_under_period_scratch, energy_under_period_with, latency_best_under_period_with,
    latency_under_period_scratch, latency_under_period_with, period_best_only_with,
    period_table_with, DpScratch, HomCtx, IntervalCostTable,
};
use cpo_model::eval::CommModel;
use cpo_model::generator::{random_apps, AppGenConfig};
use cpo_model::num;
use proptest::prelude::*;
use rand::prelude::*;

// ---------------------------------------------------------------------------
// Reference cores (the original implementations, kept as the oracle)
// ---------------------------------------------------------------------------

struct RefTable {
    best: Vec<f64>,
    exact: Vec<Vec<f64>>,
    parent: Vec<Vec<usize>>,
    mode_of: Vec<Vec<usize>>, // energy only
    exact_k: Vec<f64>,        // energy only
}

fn ref_period_table(ctx: &HomCtx<'_>, qmax: usize) -> RefTable {
    let n = ctx.app.n();
    let s = ctx.max_speed();
    let kcap = qmax.min(n).max(1);
    let inf = f64::INFINITY;
    let mut exact = vec![vec![inf; n + 1]; kcap + 1];
    let mut parent = vec![vec![usize::MAX; n + 1]; kcap + 1];
    for i in 1..=n {
        exact[1][i] = ctx.cycle(0, i - 1, s);
        parent[1][i] = 0;
    }
    for k in 2..=kcap {
        for i in k..=n {
            let mut best = inf;
            let mut arg = usize::MAX;
            for j in (k - 1)..i {
                let cand = num::fmax(exact[k - 1][j], ctx.cycle(j, i - 1, s));
                if cand < best {
                    best = cand;
                    arg = j;
                }
            }
            exact[k][i] = best;
            parent[k][i] = arg;
        }
    }
    let mut best = Vec::with_capacity(qmax);
    let mut acc = inf;
    for q in 1..=qmax {
        let k = q.min(kcap);
        acc = num::fmin(acc, exact[k][n]);
        best.push(acc);
    }
    RefTable { best, exact, parent, mode_of: vec![], exact_k: vec![] }
}

fn ref_latency_table(ctx: &HomCtx<'_>, t_bound: f64, qmax: usize) -> RefTable {
    let n = ctx.app.n();
    let s = ctx.max_speed();
    let input_edge = ctx.app.input_of(0) / ctx.bandwidth;
    let kcap = qmax.min(n).max(1);
    let inf = f64::INFINITY;
    let mut exact = vec![vec![inf; n + 1]; kcap + 1];
    let mut parent = vec![vec![usize::MAX; n + 1]; kcap + 1];
    for i in 1..=n {
        if num::le(ctx.cycle(0, i - 1, s), t_bound) {
            exact[1][i] = input_edge + ctx.latency_term(0, i - 1, s);
            parent[1][i] = 0;
        }
    }
    for k in 2..=kcap {
        for i in k..=n {
            let mut best = inf;
            let mut arg = usize::MAX;
            for j in (k - 1)..i {
                if exact[k - 1][j].is_finite() && num::le(ctx.cycle(j, i - 1, s), t_bound) {
                    let cand = exact[k - 1][j] + ctx.latency_term(j, i - 1, s);
                    if cand < best {
                        best = cand;
                        arg = j;
                    }
                }
            }
            exact[k][i] = best;
            parent[k][i] = arg;
        }
    }
    let mut best = Vec::with_capacity(qmax);
    let mut acc = inf;
    for q in 1..=qmax {
        let k = q.min(kcap);
        acc = num::fmin(acc, exact[k][n]);
        best.push(acc);
    }
    RefTable { best, exact, parent, mode_of: vec![], exact_k: vec![] }
}

fn ref_energy_table(ctx: &HomCtx<'_>, t_bound: f64, qmax: usize) -> RefTable {
    let n = ctx.app.n();
    let kcap = qmax.min(n).max(1);
    let inf = f64::INFINITY;
    // cost1[j][i-1]: cheapest single-processor energy for stages j..=i-1.
    let mut cost1 = vec![vec![inf; n]; n];
    let mut mode1 = vec![vec![usize::MAX; n]; n];
    for lo in 0..n {
        for hi in lo..n {
            if let Some((m, e)) = ctx.cheapest_feasible_mode(lo, hi, t_bound) {
                cost1[lo][hi] = e;
                mode1[lo][hi] = m;
            }
        }
    }
    let mut exact = vec![vec![inf; n + 1]; kcap + 1];
    let mut parent = vec![vec![usize::MAX; n + 1]; kcap + 1];
    let mut mode_of = vec![vec![usize::MAX; n + 1]; kcap + 1];
    for i in 1..=n {
        exact[1][i] = cost1[0][i - 1];
        parent[1][i] = 0;
        mode_of[1][i] = mode1[0][i - 1];
    }
    for k in 2..=kcap {
        for i in k..=n {
            let mut best = inf;
            let mut arg = usize::MAX;
            let mut bm = usize::MAX;
            for j in (k - 1)..i {
                if exact[k - 1][j].is_finite() && cost1[j][i - 1].is_finite() {
                    let cand = exact[k - 1][j] + cost1[j][i - 1];
                    if cand < best {
                        best = cand;
                        arg = j;
                        bm = mode1[j][i - 1];
                    }
                }
            }
            exact[k][i] = best;
            parent[k][i] = arg;
            mode_of[k][i] = bm;
        }
    }
    let exact_k: Vec<f64> = (1..=kcap).map(|k| exact[k][n]).collect();
    RefTable { best: vec![], exact, parent, mode_of, exact_k }
}

/// Reference reconstruction: smallest k attaining `target`, parent walk.
fn ref_partition(
    table: &RefTable,
    n: usize,
    q: usize,
    with_modes: bool,
    target: f64,
) -> Option<(Vec<(usize, usize)>, Vec<usize>)> {
    if !target.is_finite() {
        return None;
    }
    let kcap = table.exact.len() - 1;
    let k = (1..=q.min(kcap)).find(|&k| num::le(table.exact[k][n], target))?;
    ref_walk(table, n, k, with_modes)
}

fn ref_walk(
    table: &RefTable,
    n: usize,
    k: usize,
    with_modes: bool,
) -> Option<(Vec<(usize, usize)>, Vec<usize>)> {
    let mut intervals = Vec::new();
    let mut modes = Vec::new();
    let mut i = n;
    let mut kk = k;
    while kk > 0 {
        let j = table.parent[kk][i];
        intervals.push((j, i - 1));
        if with_modes {
            modes.push(table.mode_of[kk][i]);
        }
        i = j;
        kk -= 1;
    }
    intervals.reverse();
    modes.reverse();
    Some((intervals, modes))
}

// ---------------------------------------------------------------------------
// Instance generation
// ---------------------------------------------------------------------------

/// Random speed set; deliberately includes near-duplicate speeds so the
/// mode-energy steps are **non-convex** (the regime that breaks the
/// quadrangle inequality and would expose an unsound divide-and-conquer).
fn random_speeds(rng: &mut StdRng) -> Vec<f64> {
    let modes = rng.gen_range(1..=4);
    let mut speeds: Vec<f64> = (0..modes)
        .map(|_| (rng.gen_range(1..=40) as f64) / 4.0)
        .collect();
    if rng.gen_bool(0.4) {
        let base = speeds[rng.gen_range(0..speeds.len())];
        speeds.push(base + 0.05);
    }
    speeds.sort_by(|a, b| a.partial_cmp(b).unwrap());
    speeds.dedup();
    speeds
}

fn thresholds_for(ctx: &HomCtx<'_>, rng: &mut StdRng) -> Vec<f64> {
    let w = ctx.app.total_work();
    let mut out = vec![
        0.0,                       // infeasible everywhere
        1e-6,                      // almost surely infeasible
        w / ctx.max_speed() * 2.0, // loose
        f64::INFINITY,             // unconstrained
    ];
    for _ in 0..4 {
        out.push(rng.gen_range(0.0..(w + 4.0)));
    }
    // A few exact candidate values (threshold boundaries are the spiciest).
    let cands = ctx.period_candidates();
    if !cands.is_empty() {
        out.push(cands[rng.gen_range(0..cands.len())]);
    }
    out
}

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

// ---------------------------------------------------------------------------
// The equivalence properties
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn period_core_is_bitwise_identical(seed in 0u64..1_000_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let apps = random_apps(
            &AppGenConfig { apps: 1, stages: (1, 10), ..Default::default() },
            seed,
        );
        let app = &apps.apps[0];
        let speeds = random_speeds(&mut rng);
        let bw = (rng.gen_range(1..=8) as f64) / 2.0;
        let mut scratch = DpScratch::new();
        for model in CommModel::ALL {
            let ctx = HomCtx::new(app, &speeds, bw, model);
            let table = IntervalCostTable::build(&ctx);
            for q in 1..=(app.n() + 2) {
                let oracle = ref_period_table(&ctx, q);
                let fast = period_table_with(&table, q, &mut scratch);
                prop_assert_eq!(bits(&oracle.best), bits(&fast.best), "best, q={}", q);
                let lean = period_best_only_with(&table, q, &mut scratch);
                prop_assert_eq!(bits(&oracle.best), bits(&lean), "lean best, q={}", q);
                let o_part =
                    ref_partition(&oracle, app.n(), q, false, oracle.best[q - 1]).unwrap();
                let f_part = fast.partition(q, speeds.len() - 1).unwrap();
                prop_assert_eq!(&o_part.0, &f_part.intervals, "partition, q={}", q);
            }
        }
    }

    #[test]
    fn latency_core_is_bitwise_identical(seed in 0u64..1_000_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let apps = random_apps(
            &AppGenConfig { apps: 1, stages: (1, 10), ..Default::default() },
            seed ^ 0x5a5a,
        );
        let app = &apps.apps[0];
        let speeds = random_speeds(&mut rng);
        let bw = (rng.gen_range(1..=8) as f64) / 2.0;
        let mut scratch = DpScratch::new();
        for model in CommModel::ALL {
            let ctx = HomCtx::new(app, &speeds, bw, model);
            let table = IntervalCostTable::build(&ctx);
            for tb in thresholds_for(&ctx, &mut rng) {
                for q in 1..=(app.n() + 1) {
                    let oracle = ref_latency_table(&ctx, tb, q);
                    let fast = latency_under_period_scratch(&table, tb, q, &mut scratch);
                    prop_assert_eq!(
                        bits(&oracle.best), bits(&fast.best),
                        "best, t={}, q={}", tb, q
                    );
                    let probe = latency_best_under_period_with(&table, tb, q, &mut scratch);
                    prop_assert_eq!(
                        probe.to_bits(), oracle.best[q - 1].to_bits(),
                        "probe, t={}, q={}", tb, q
                    );
                    let o_part = ref_partition(&oracle, app.n(), q, false, oracle.best[q - 1]);
                    let f_part = fast.partition(q, speeds.len() - 1);
                    match (o_part, f_part) {
                        (None, None) => {}
                        (Some(o), Some(f)) => {
                            prop_assert_eq!(&o.0, &f.intervals, "partition, t={}, q={}", tb, q)
                        }
                        other => prop_assert!(false, "feasibility mismatch: {:?}", other),
                    }
                }
            }
        }
    }

    #[test]
    fn energy_core_is_bitwise_identical(seed in 0u64..1_000_000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let apps = random_apps(
            &AppGenConfig { apps: 1, stages: (1, 10), ..Default::default() },
            seed ^ 0xc3c3,
        );
        let app = &apps.apps[0];
        let speeds = random_speeds(&mut rng);
        let bw = (rng.gen_range(1..=8) as f64) / 2.0;
        let e_stat = if rng.gen_bool(0.5) { 0.0 } else { rng.gen_range(0.0..5.0) };
        let mut scratch = DpScratch::new();
        for model in CommModel::ALL {
            let mut ctx = HomCtx::new(app, &speeds, bw, model);
            ctx.e_stat = e_stat;
            let table = IntervalCostTable::build(&ctx);
            for tb in thresholds_for(&ctx, &mut rng) {
                for q in 1..=(app.n() + 1) {
                    let oracle = ref_energy_table(&ctx, tb, q);
                    // Reuse one scratch across every (model, tb, q): the
                    // frontier cache must never change a result.
                    let fast = energy_under_period_scratch(&table, tb, q, &mut scratch);
                    prop_assert_eq!(
                        bits(&oracle.exact_k), bits(&fast.exact_k),
                        "exact_k, t={}, q={}", tb, q
                    );
                    let kcap = oracle.exact_k.len();
                    for k in 1..=kcap {
                        let o_part = if oracle.exact_k[k - 1].is_finite() {
                            ref_walk(&oracle, app.n(), k, true)
                        } else {
                            None
                        };
                        let f_part = fast.partition_exact(k);
                        match (o_part, f_part) {
                            (None, None) => {}
                            (Some(o), Some(f)) => {
                                prop_assert_eq!(&o.0, &f.intervals, "intervals k={}", k);
                                prop_assert_eq!(&o.1, &f.modes, "modes k={}", k);
                            }
                            other => prop_assert!(false, "mismatch k={}: {:?}", k, other),
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn one_scratch_survives_interleaved_instances(seed in 0u64..1_000_000) {
        // Stale-state check: one DpScratch solving an interleaved stream of
        // different applications, sizes, models and thresholds must match
        // fresh-scratch solves (no leakage through arenas or frontiers).
        let mut rng = StdRng::seed_from_u64(seed);
        let apps = random_apps(
            &AppGenConfig { apps: 3, stages: (1, 9), ..Default::default() },
            seed ^ 0x7777,
        );
        let speeds: Vec<Vec<f64>> =
            (0..3).map(|_| random_speeds(&mut rng)).collect();
        let mut shared = DpScratch::new();
        for round in 0..6 {
            let a: usize = rng.gen_range(0..3);
            let model = if rng.gen_bool(0.5) { CommModel::Overlap } else { CommModel::NoOverlap };
            let ctx = HomCtx::new(&apps.apps[a], &speeds[a], 2.0, model);
            let table = IntervalCostTable::build(&ctx);
            let tb = rng.gen_range(0.0..(apps.apps[a].total_work() + 2.0));
            let q = rng.gen_range(1..=5);
            match round % 3 {
                0 => {
                    let shared_t = energy_under_period_scratch(&table, tb, q, &mut shared);
                    let fresh = energy_under_period_with(&table, tb, q);
                    prop_assert_eq!(bits(&shared_t.exact_k), bits(&fresh.exact_k));
                    prop_assert_eq!(shared_t.partition_best(), fresh.partition_best());
                }
                1 => {
                    let shared_t = latency_under_period_scratch(&table, tb, q, &mut shared);
                    let fresh = latency_under_period_with(&table, tb, q);
                    prop_assert_eq!(bits(&shared_t.best), bits(&fresh.best));
                    prop_assert_eq!(shared_t.partition(q, 0), fresh.partition(q, 0));
                }
                _ => {
                    let shared_t = period_table_with(&table, q, &mut shared);
                    let fresh = period_table_with(&table, q, &mut DpScratch::new());
                    prop_assert_eq!(bits(&shared_t.best), bits(&fresh.best));
                }
            }
        }
    }
}
