//! End-to-end drills for the `serve` subcommand and the streaming JSONL
//! contract, run against the compiled binaries (`cpo-experiments`,
//! `load_gen`) so transport, signal, and environment wiring are covered —
//! not just the library layer that `crates/serve/tests` already locks.

use cpo_model::prelude::*;
use cpo_model::spec::Strategy;
use cpo_serve::{ServeOutcome, ServeReply};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_cpo-experiments"))
}

fn load_gen() -> Command {
    Command::new(env!("CARGO_BIN_EXE_load_gen"))
}

fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cpo-serve-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn request_line(tb: f64) -> String {
    let (apps, _) = cpo_model::generator::section2_example();
    let platform = Platform::fully_homogeneous(3, vec![1.0, 3.0, 6.0, 8.0], 1.0).unwrap();
    let problem = ProblemSpec::new(Objective::Energy, Strategy::Interval, CommModel::Overlap)
        .with_period_bounds(vec![tb, tb]);
    SolveRequest::new("e2e", apps, platform, problem)
        .with_id(format!("e2e-{tb}"))
        .to_json_compact()
        .unwrap()
}

/// Generate a request file with `load_gen gen`, returning its lines.
fn generate(dir: &Path, args: &[&str]) -> String {
    let out = load_gen().args(["gen"]).args(args).output().expect("run load_gen gen");
    assert!(out.status.success(), "load_gen gen failed: {}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8(out.stdout).expect("utf8 request stream");
    std::fs::write(dir.join("reqs.jsonl"), &text).expect("write request file");
    text
}

/// Run `serve --once` over `input`, returning (stdout, stderr).
fn serve_once(input: &str, envs: &[(&str, &str)], extra: &[&str]) -> (String, String) {
    let mut cmd = bin();
    cmd.args(["serve", "--once", "--stats-secs", "0"])
        .args(extra)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped());
    for (k, v) in envs {
        cmd.env(k, v);
    }
    let mut child = cmd.spawn().expect("spawn serve");
    child.stdin.take().unwrap().write_all(input.as_bytes()).expect("feed stdin");
    let out = child.wait_with_output().expect("serve exits");
    let stderr = String::from_utf8_lossy(&out.stderr).to_string();
    assert!(out.status.success(), "serve exited nonzero:\n{stderr}");
    (String::from_utf8_lossy(&out.stdout).to_string(), stderr)
}

/// Assert the full reply contract with `load_gen verify`.
fn verify(dir: &Path, replies: &str) {
    std::fs::write(dir.join("replies.jsonl"), replies).expect("write reply file");
    let out = load_gen()
        .args(["verify", "--requests"])
        .arg(dir.join("reqs.jsonl"))
        .arg("--responses")
        .arg(dir.join("replies.jsonl"))
        .output()
        .expect("run load_gen verify");
    assert!(
        out.status.success(),
        "reply contract violated:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
}

// ---------------------------------------------------------------------------
// satellite: streaming JSONL robustness in `batch`
// ---------------------------------------------------------------------------

#[test]
fn batch_garbage_lines_become_typed_unsupported_outcomes_in_order() {
    let dir = scratch("batch-garbage");
    let lines = [
        request_line(2.0),
        "{not json at all".to_string(),
        request_line(1.5),
        "42".to_string(),
        "{\"description\": \"missing everything\"}".to_string(),
        request_line(1.0),
    ];
    let path = dir.join("batch.jsonl");
    std::fs::write(&path, lines.join("\n")).expect("write batch file");

    let out = bin().arg("batch").arg(&path).output().expect("run batch");
    assert!(out.status.success(), "batch failed: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    let outcomes: Vec<SolveOutcome> = stdout
        .lines()
        .map(|l| SolveOutcome::from_json(l).expect("every batch line is a typed outcome"))
        .collect();
    assert_eq!(outcomes.len(), lines.len(), "one outcome per input line, garbage included");
    for (i, expect_garbage) in [false, true, false, true, true, false].iter().enumerate() {
        match (&outcomes[i], expect_garbage) {
            (SolveOutcome::Solution { .. }, false) => {}
            (SolveOutcome::Unsupported { reason }, true) => {
                assert!(
                    reason.contains("unparseable request"),
                    "line {i}: garbage must carry a parse reason, got `{reason}`"
                );
            }
            (other, _) => panic!("line {i}: unexpected outcome {other:?}"),
        }
    }
}

// ---------------------------------------------------------------------------
// serve: clean run, chaos drills
// ---------------------------------------------------------------------------

#[test]
fn serve_once_answers_every_line_exactly_once() {
    let dir = scratch("clean");
    let reqs = generate(&dir, &["--mix", "mixed", "--count", "48", "--seed", "3", "--garbage", "2"]);
    let (replies, _) = serve_once(&reqs, &[], &[]);
    verify(&dir, &replies);
}

#[test]
fn serve_survives_panic_chaos_and_exports_repro_bundles() {
    let dir = scratch("chaos-panic");
    let bundles = dir.join("bundles");
    let reqs = generate(&dir, &["--mix", "duplicate", "--count", "40", "--seed", "11"]);
    let (replies, stderr) = serve_once(
        &reqs,
        &[
            ("CPO_SERVE_CHAOS", "panic=0.3"),
            ("CPO_SERVE_CHAOS_SEED", "5"),
            ("CPO_BUNDLE_DIR", bundles.to_str().unwrap()),
        ],
        &[],
    );
    verify(&dir, &replies);
    let failed = replies
        .lines()
        .filter(|l| {
            matches!(ServeReply::from_json(l).unwrap().outcome, ServeOutcome::Failed { .. })
        })
        .count();
    assert!(failed > 0, "panic=0.3 over 40 requests must hit at least once");
    let exported = std::fs::read_dir(&bundles).map(|d| d.count()).unwrap_or(0);
    assert!(exported > 0, "injected panics must freeze repro bundles\n{stderr}");
}

#[test]
fn serve_quarantines_poison_after_strikes_under_chaos() {
    let dir = scratch("chaos-poison");
    let reqs =
        generate(&dir, &["--mix", "duplicate", "--count", "40", "--seed", "9", "--poison", "3"]);
    let (replies, stderr) = serve_once(
        &reqs,
        &[
            ("CPO_SERVE_CHAOS", "poison=POISON"),
            ("CPO_BUNDLE_DIR", dir.join("bundles").to_str().unwrap()),
        ],
        &["--strikes", "2"],
    );
    verify(&dir, &replies);
    let mut failed = 0usize;
    let mut quarantined = 0usize;
    for line in replies.lines() {
        match ServeReply::from_json(line).unwrap().outcome {
            ServeOutcome::Failed { .. } => failed += 1,
            ServeOutcome::Rejected { detail, .. } if detail.contains("quarantine") => {
                quarantined += 1
            }
            _ => {}
        }
    }
    // Ingress can admit the third poison request before the second strike
    // lands (strict serialized counts are locked in crates/serve/tests);
    // what must hold regardless of racing: every poison line is either a
    // typed failure or a quarantine bounce, and at least the threshold
    // count failed before the breaker could trip.
    assert!(failed >= 2, "strike threshold 2 admits at least two poison failures\n{stderr}");
    assert_eq!(failed + quarantined, 3, "every poison line gets a typed reply\n{stderr}");
}

#[test]
fn serve_keeps_exactly_once_under_stall_chaos() {
    let dir = scratch("chaos-stall");
    let reqs = generate(&dir, &["--mix", "mixed", "--count", "32", "--seed", "17"]);
    let (replies, _) =
        serve_once(&reqs, &[("CPO_SERVE_CHAOS", "stall=0.5:10")], &["--threads", "4"]);
    verify(&dir, &replies);
}

// ---------------------------------------------------------------------------
// serve: socket ingress and control verbs
// ---------------------------------------------------------------------------

#[test]
fn serve_socket_takes_requests_and_control_verbs() {
    use std::io::{BufRead, BufReader};
    use std::os::unix::net::UnixStream;

    let dir = scratch("socket");
    let sock = dir.join("serve.sock");
    let child = bin()
        .args(["serve", "--stats-secs", "0", "--socket"])
        .arg(&sock)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn serve");

    // The socket appears once the listener binds.
    let mut waited = 0u64;
    while !sock.exists() {
        assert!(waited < 10_000, "socket never appeared");
        std::thread::sleep(std::time::Duration::from_millis(20));
        waited += 20;
    }

    let stream = UnixStream::connect(&sock).expect("connect to serve socket");
    let mut writer = stream.try_clone().expect("clone socket stream");
    let mut reader = BufReader::new(stream);

    // Control verb: stats comes back on the same connection.
    writeln!(writer, "stats").expect("send stats verb");
    let mut line = String::new();
    reader.read_line(&mut line).expect("read stats reply");
    assert!(line.contains("\"accepted\":0"), "fresh stats line, got: {line}");

    // A request over the socket is answered on stdout.
    writeln!(writer, "{}", request_line(2.0)).expect("send request");
    // Graceful shutdown over the socket drains and exits 0.
    writeln!(writer, "shutdown").expect("send shutdown verb");

    let out = child.wait_with_output().expect("serve exits after shutdown");
    assert!(out.status.success(), "shutdown must exit 0");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let replies: Vec<ServeReply> =
        stdout.lines().map(|l| ServeReply::from_json(l).expect("typed reply")).collect();
    assert_eq!(replies.len(), 1, "the socket request is answered exactly once");
    assert!(matches!(replies[0].outcome, ServeOutcome::Done { .. }));
    assert_eq!(replies[0].id.as_deref(), Some("e2e-2"));
    assert!(!sock.exists(), "socket file is removed on exit");
}
