//! The trust subsystem, end to end: differential path determinism across
//! thread counts, bundle export + bit-for-bit replay, the injected
//! divergence drill (`CPO_TRUST_CORRUPT`), the poison-spec batch, and a
//! fuzz smoke. Anything that depends on environment variables runs in a
//! subprocess (the compiled `cpo-experiments` binary) so tests stay
//! parallel-safe.

use cpo_engine::EngineConfig;
use cpo_experiments::trust::{self, make_recipe, run_paths, scenario_grid};
use cpo_model::bundle::{
    BundleSource, FailureContext, FailureKind, ReproBundle,
};
use cpo_model::prelude::*;
use std::path::PathBuf;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_cpo-experiments"))
}

/// A per-test scratch directory (no timestamps: process id + test name).
fn scratch(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cpo-trust-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn section2_request() -> SolveRequest {
    let (apps, _) = cpo_model::generator::section2_example();
    let platform = Platform::fully_homogeneous(3, vec![1.0, 3.0, 6.0, 8.0], 1.0).unwrap();
    let problem = ProblemSpec::new(Objective::Energy, Strategy::Interval, CommModel::Overlap)
        .with_period_bounds(vec![2.0, 2.0]);
    SolveRequest::new("section 2 energy compromise", apps, platform, problem)
}

fn cfg_threads(n: usize) -> EngineConfig {
    EngineConfig { threads: n, ..EngineConfig::default() }
}

// ---------------------------------------------------------------------------
// determinism across thread counts
// ---------------------------------------------------------------------------

#[test]
fn run_paths_is_bitwise_identical_across_thread_counts() {
    let req = section2_request();
    let reference = run_paths(&req, &cfg_threads(1), 32);
    assert!(
        reference.divergences.is_empty(),
        "section 2 instance must be divergence-free: {:?}",
        reference.divergences
    );
    for threads in [2, 4, 0] {
        let other = run_paths(&req, &cfg_threads(threads), 32);
        assert_eq!(other.divergences, Vec::<String>::new());
        assert_eq!(reference.paths.len(), other.paths.len());
        for (a, b) in reference.paths.iter().zip(&other.paths) {
            assert_eq!(a.path, b.path);
            assert_eq!(a.digest, b.digest, "path `{}` digest varies with threads", a.path);
            assert_eq!(a.values, b.values, "path `{}` observations vary with threads", a.path);
        }
    }
}

#[test]
fn replay_confirms_a_bundle_recorded_under_any_thread_count() {
    let req = section2_request();
    for threads in [1usize, 3] {
        let cfg = cfg_threads(threads);
        let report = run_paths(&req, &cfg, 16);
        let bundle = ReproBundle::new(
            "unit-test bundle",
            FailureContext {
                kind: FailureKind::DifferentialMismatch,
                message: "synthetic".into(),
                item_index: None,
            },
            BundleSource::Request(req.clone()),
            trust::engine_snapshot(&cfg),
            16,
            report.paths,
        )
        .expect("bundle builds");
        // Round-trip through JSON first: replay must work from the
        // serialized artifact, not the in-memory object.
        let back = ReproBundle::from_json(&bundle.to_json().expect("serializes")).expect("parses");
        let verdict = trust::replay(&back).expect("replay runs");
        assert!(verdict.confirmed, "threads={threads}: {:#?}", verdict.details);
    }
}

#[test]
fn replay_confirms_a_generated_recipe_bundle() {
    let grid = scenario_grid();
    // A plain period/interval/overlap scenario on a dedicated platform.
    let scenario = grid
        .iter()
        .find(|s| {
            s.objective == Objective::Period
                && s.strategy == Strategy::Interval
                && s.comm == CommModel::Overlap
        })
        .expect("grid covers the basic scenario");
    let recipe = make_recipe(scenario, 2024, 0, 3);
    let cfg = cfg_threads(2);
    let req = recipe.materialize().expect("recipe materializes");
    let report = run_paths(&req, &cfg, trust::FUZZ_DATASETS);
    let bundle = ReproBundle::new(
        "unit-test recipe bundle",
        FailureContext {
            kind: FailureKind::DifferentialMismatch,
            message: "synthetic".into(),
            item_index: None,
        },
        BundleSource::Generated(recipe),
        trust::engine_snapshot(&cfg),
        trust::FUZZ_DATASETS,
        report.paths,
    )
    .expect("bundle builds");
    let dir = scratch("recipe-bundle");
    let path = bundle.write_to_dir(&dir).expect("bundle writes");
    let text = std::fs::read_to_string(&path).expect("bundle readable");
    let back = ReproBundle::from_json(&text).expect("bundle parses");
    let verdict = trust::replay(&back).expect("replay runs");
    assert!(verdict.confirmed, "{:#?}", verdict.details);
}

// ---------------------------------------------------------------------------
// the injected-divergence drill (subprocess: needs CPO_TRUST_CORRUPT)
// ---------------------------------------------------------------------------

#[test]
fn corrupted_solver_exports_a_bundle_that_replays_bit_for_bit() {
    let dir = scratch("drill");
    let spec = dir.join("spec.json");
    std::fs::write(&spec, section2_request().to_json().expect("serializes")).unwrap();
    let bundles = dir.join("bundles");

    // 1. The corrupted solve trips --check, exits 1 and writes a bundle.
    let out = bin()
        .args(["solve", spec.to_str().unwrap(), "--check"])
        .env("CPO_TRUST_CORRUPT", "1")
        .env("CPO_BUNDLE_DIR", &bundles)
        .output()
        .expect("solve runs");
    assert_eq!(out.status.code(), Some(1), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("check: MISMATCH"), "stderr: {stderr}");
    assert!(stderr.contains("repro bundle written"), "stderr: {stderr}");
    let bundle_files: Vec<_> = std::fs::read_dir(&bundles)
        .expect("bundle dir exists")
        .map(|e| e.unwrap().path())
        .collect();
    assert_eq!(bundle_files.len(), 1, "exactly one bundle: {bundle_files:?}");

    // 2. Under the same fault the bundle replays bit-for-bit (exit 0).
    let out = bin()
        .args(["replay", bundle_files[0].to_str().unwrap()])
        .env("CPO_TRUST_CORRUPT", "1")
        .output()
        .expect("replay runs");
    assert_eq!(out.status.code(), Some(0), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    assert!(String::from_utf8_lossy(&out.stdout).contains("CONFIRMED"));

    // 3. With the fault removed the recording no longer reproduces
    //    (exit 1) — replay distinguishes the two worlds.
    let out = bin()
        .args(["replay", bundle_files[0].to_str().unwrap()])
        .output()
        .expect("replay runs");
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stdout).contains("NOT REPRODUCED"));
}

// ---------------------------------------------------------------------------
// the poison-spec batch (subprocess: needs CPO_BUNDLE_DIR)
// ---------------------------------------------------------------------------

#[test]
fn poisoned_batch_item_fails_typed_without_aborting_and_bundles() {
    let dir = scratch("poison");
    let bundles = dir.join("bundles");
    let good = {
        let (apps, _) = cpo_model::generator::section2_example();
        let platform = Platform::fully_homogeneous(3, vec![1.0, 3.0, 6.0, 8.0], 1.0).unwrap();
        let problem = ProblemSpec::new(Objective::Period, Strategy::Interval, CommModel::Overlap);
        SolveRequest::new("clean period solve", apps, platform, problem)
            .to_json_compact()
            .expect("serializes")
    };
    // Contaminate the platform's static energy with +infinity (`1e999`
    // parses to +inf; work/speed/bandwidth contamination is rejected at
    // parse time, static energy is the numeric door that stays open).
    let poison = good.replace("\"e_stat\":0", "\"e_stat\":1e999");
    assert_ne!(good, poison, "the poison replacement must hit");
    let batch = dir.join("batch.jsonl");
    std::fs::write(&batch, format!("{good}\n{poison}\n{good}\n")).unwrap();

    let out = bin()
        .args(["batch", batch.to_str().unwrap(), "--check"])
        .env("CPO_BUNDLE_DIR", &bundles)
        .output()
        .expect("batch runs");
    // Nonzero exit, but every item still answered in order — the poisoned
    // line degraded, it did not abort the batch.
    assert_eq!(out.status.code(), Some(1), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    let lines: Vec<_> = stdout.lines().filter(|l| !l.trim().is_empty()).collect();
    assert_eq!(lines.len(), 3, "one typed outcome per input line: {stdout}");
    for line in &lines {
        assert!(
            SolveOutcome::from_json(line).is_ok(),
            "every output line is a typed outcome: {line}"
        );
    }
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("item 1 MISMATCH"), "stderr: {stderr}");
    assert!(stderr.contains("non-finite"), "stderr: {stderr}");

    // The poisoned item produced a bundle, and it replays bit-for-bit
    // (the raw-spec source preserves the exact contaminated bytes).
    let bundle_files: Vec<_> = std::fs::read_dir(&bundles)
        .expect("bundle dir exists")
        .map(|e| e.unwrap().path())
        .collect();
    assert_eq!(bundle_files.len(), 1, "exactly one bundle: {bundle_files:?}");
    let out = bin()
        .args(["replay", bundle_files[0].to_str().unwrap()])
        .output()
        .expect("replay runs");
    assert_eq!(out.status.code(), Some(0), "stderr: {}", String::from_utf8_lossy(&out.stderr));
}

// ---------------------------------------------------------------------------
// fuzz smoke (subprocess: the CLI front door, one-second box)
// ---------------------------------------------------------------------------

#[test]
fn fuzz_one_second_finds_no_divergence_on_main() {
    let dir = scratch("fuzz-smoke");
    let out = bin()
        .args(["fuzz", "--seconds", "1", "--seed", "5", "--threads", "2"])
        .env("CPO_BUNDLE_DIR", &dir)
        .output()
        .expect("fuzz runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(
        out.status.code(),
        Some(0),
        "fuzz must be green on main; stdout: {stdout}; stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(stdout.contains("0 divergent"), "stdout: {stdout}");
    // Deterministic sequencing: the grid is swept in order, so at least
    // one full sweep of all 160 scenarios happens inside a second.
    assert!(stdout.contains("over 160 scenarios"), "stdout: {stdout}");
}

// ---------------------------------------------------------------------------
// check_outcome hardening
// ---------------------------------------------------------------------------

#[test]
fn check_outcome_flags_non_finite_evaluations_instead_of_panicking() {
    // Build the poisoned request in memory (JSON text is the only door
    // for +inf, so go through the parser like the CLI does).
    let good = section2_request();
    let mut json = good.to_json_compact().expect("serializes");
    json = json.replace("\"e_stat\":0", "\"e_stat\":1e999");
    let req = SolveRequest::from_json(&json).expect("poisoned request parses");
    let req = SolveRequest {
        problem: ProblemSpec::new(Objective::Period, Strategy::Interval, CommModel::Overlap),
        ..req
    };
    let out = cpo_core::route(&req.apps, &req.platform, &req.problem);
    assert!(matches!(out, SolveOutcome::Solution(_)), "period ignores e_stat: {out:?}");
    let err = trust::check_outcome(&req, &out, 16).expect_err("poison must be flagged");
    assert!(err.contains("non-finite"), "err: {err}");
}
