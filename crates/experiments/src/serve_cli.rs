//! The `cpo-experiments serve` subcommand: transport, stats printing and
//! trust-subsystem wiring around [`cpo_serve::Server`].
//!
//! Ingress:
//!
//! * **stdin** — one JSONL `SolveRequest` per line; with `--once` the
//!   server drains and exits 0 at EOF (the drill/bench mode).
//! * **Unix socket** (`--socket PATH`) — additional ingress accepting
//!   the same lines from any number of connections.
//!
//! All solve replies stream to **stdout** as JSONL `ServeReply` lines,
//! whatever the ingress — the envelope `id` is the correlation key.
//! Control verbs (on either ingress): `shutdown` starts a graceful
//! drain, `stats` prints an immediate stats line, `reset-quarantine`
//! reopens quarantined digests. Periodic stats lines (and the final
//! drain snapshot) go to stderr as compact JSON. SIGTERM/SIGINT start
//! the same graceful drain as `shutdown`.
//!
//! Fault injection: `CPO_SERVE_CHAOS` (+ `CPO_SERVE_CHAOS_SEED`) — see
//! [`cpo_serve::chaos`].

use crate::trust;
use cpo_model::bundle::BundleSource;
use cpo_serve::chaos::ChaosConfig;
use cpo_serve::{
    CheckHook, FailureHook, ReplySink, ServeConfig, Server, ServerHandle, ServerHooks,
};
use std::io::{BufRead, Write};
use std::os::unix::net::UnixListener;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// CLI options for `serve` (parsed by the binary's flag helpers).
pub struct ServeCliOptions {
    /// Exit after stdin EOF + drain (drill/bench mode).
    pub once: bool,
    /// Optional Unix socket ingress path.
    pub socket: Option<String>,
    /// Worker threads (`None` = one per core).
    pub threads: Option<usize>,
    /// Ingress queue capacity.
    pub queue: usize,
    /// Per-tenant token rate, requests/second (0 = unlimited).
    pub rate: f64,
    /// Per-tenant burst capacity.
    pub burst: f64,
    /// Quarantine strike threshold.
    pub strikes: u32,
    /// Cross-validate every solve (the `--check` loop).
    pub check: bool,
    /// Simulator data sets for `--check` and bundle export.
    pub datasets: usize,
    /// Stats line period, seconds (0 = no periodic line).
    pub stats_secs: u64,
    /// Enable the deadline heuristic-downgrade path.
    pub downgrade: bool,
    /// Deadline calibration, cost units per millisecond.
    pub cost_per_ms: u64,
}

impl Default for ServeCliOptions {
    fn default() -> Self {
        ServeCliOptions {
            once: false,
            socket: None,
            threads: None,
            queue: cpo_serve::DEFAULT_QUEUE_CAPACITY,
            rate: 0.0,
            burst: 64.0,
            strikes: cpo_serve::DEFAULT_STRIKES,
            check: false,
            datasets: 64,
            stats_secs: 10,
            downgrade: false,
            cost_per_ms: cpo_serve::DEFAULT_COST_UNITS_PER_MS,
        }
    }
}

/// The drain trigger shared by SIGTERM, `shutdown` verbs and stdin EOF.
static SHUTDOWN: AtomicBool = AtomicBool::new(false);

extern "C" fn on_signal(_sig: i32) {
    SHUTDOWN.store(true, Ordering::SeqCst);
}

fn install_signal_handlers() {
    // std links libc; declaring `signal` directly keeps the approved
    // dependency set closed. SIGTERM = 15, SIGINT = 2 on linux.
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    unsafe {
        signal(15, on_signal);
        signal(2, on_signal);
    }
}

fn chaos_from_env() -> Result<Option<ChaosConfig>, String> {
    let Some(spec) = std::env::var_os("CPO_SERVE_CHAOS") else {
        return Ok(None);
    };
    let spec = spec.to_string_lossy().to_string();
    let seed = match std::env::var_os("CPO_SERVE_CHAOS_SEED") {
        Some(s) => s
            .to_string_lossy()
            .parse::<u64>()
            .map_err(|_| "CPO_SERVE_CHAOS_SEED must be a u64".to_string())?,
        None => 0,
    };
    let cfg = ChaosConfig::parse(&spec, seed)?;
    Ok((!cfg.is_inert()).then_some(cfg))
}

/// Wire the trust subsystem into the server's capture hooks.
fn trust_hooks(check: bool, engine: cpo_engine::EngineConfig, datasets: usize) -> ServerHooks {
    let export_cfg = engine.clone();
    let failure: FailureHook = Arc::new(move |req, kind, message| {
        // A request that cannot re-serialize (poisoned numerics) cannot
        // be frozen; the strike still counts, only the export is skipped.
        let Ok(_) = req.to_json_compact() else {
            eprintln!("repro bundle skipped: request not re-serializable");
            return false;
        };
        match trust::export_bundle(
            kind,
            message.to_string(),
            None,
            BundleSource::Request(req.clone()),
            &export_cfg,
            datasets,
        ) {
            Ok(path) => {
                eprintln!("repro bundle written: {}", path.display());
                true
            }
            Err(e) => {
                eprintln!("could not write repro bundle: {e}");
                false
            }
        }
    });
    let check_hook: Option<CheckHook> = check.then(|| {
        let hook: CheckHook =
            Arc::new(move |req, out| trust::check_outcome(req, out, datasets));
        hook
    });
    ServerHooks { failure: Some(failure), check: check_hook }
}

/// One line handled from any ingress. Returns `true` when the line asked
/// for shutdown.
fn handle_line(handle: &ServerHandle, line: &str, control_out: &mut dyn Write) -> bool {
    match line.trim() {
        "" => false,
        "shutdown" => {
            SHUTDOWN.store(true, Ordering::SeqCst);
            let _ = writeln!(control_out, "draining");
            true
        }
        "stats" => {
            let snap = handle.snapshot();
            let line = cpo_model::io::serde_json_error::to_string(&snap)
                .unwrap_or_else(|e| format!("{{\"error\":\"{e}\"}}"));
            let _ = writeln!(control_out, "{line}");
            false
        }
        "reset-quarantine" => {
            handle.reset_quarantine();
            let _ = writeln!(control_out, "quarantine reset");
            false
        }
        request => {
            handle.submit_line(request);
            false
        }
    }
}

fn stats_line(handle: &ServerHandle) {
    let snap = handle.snapshot();
    match cpo_model::io::serde_json_error::to_string(&snap) {
        Ok(line) => eprintln!("{line}"),
        Err(e) => eprintln!("stats line unserializable: {e}"),
    }
}

/// Run the server; returns the process exit code.
pub fn cmd_serve(opts: ServeCliOptions) -> i32 {
    let chaos = match chaos_from_env() {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{e}");
            return 2;
        }
    };
    let engine = match opts.threads {
        // Serve workers own the parallelism; the engine solves one
        // request per worker call.
        Some(_) | None => cpo_engine::EngineConfig { threads: 1, ..Default::default() },
    };
    let cfg = ServeConfig {
        threads: opts.threads.unwrap_or(0),
        queue_capacity: opts.queue,
        rate_per_sec: opts.rate,
        burst: opts.burst,
        strikes: opts.strikes,
        deadline_downgrade: opts.downgrade,
        cost_units_per_ms: opts.cost_per_ms,
        engine: engine.clone(),
        chaos,
    };
    install_signal_handlers();

    // Replies: JSONL on stdout, one locked write per reply.
    let sink: ReplySink = Arc::new(move |reply| {
        let line = reply
            .to_json_compact()
            .unwrap_or_else(|e| format!("{{\"error\":\"reply unserializable: {e}\"}}"));
        let stdout = std::io::stdout();
        let mut out = stdout.lock();
        let _ = writeln!(out, "{line}");
        let _ = out.flush();
    });

    let server = Server::start(cfg, sink, trust_hooks(opts.check, engine, opts.datasets));
    eprintln!("serve: ready (queue={}, strikes={})", opts.queue, opts.strikes);

    // Socket ingress: one handler thread per connection.
    if let Some(path) = &opts.socket {
        let _ = std::fs::remove_file(path);
        match UnixListener::bind(path) {
            Ok(listener) => {
                let handle = server.handle();
                std::thread::spawn(move || {
                    for conn in listener.incoming().flatten() {
                        let handle = handle.clone();
                        std::thread::spawn(move || {
                            let mut writer = match conn.try_clone() {
                                Ok(w) => w,
                                Err(_) => return,
                            };
                            let reader = std::io::BufReader::new(conn);
                            for line in reader.lines() {
                                let Ok(line) = line else { break };
                                if handle_line(&handle, &line, &mut writer) {
                                    break;
                                }
                            }
                        });
                    }
                });
            }
            Err(e) => {
                eprintln!("cannot bind socket `{path}`: {e}");
                return 2;
            }
        }
    }

    // stdin ingress on its own thread so the main thread can watch the
    // shutdown flag and run the stats ticker.
    let stdin_handle = server.handle();
    let once = opts.once;
    let stdin_reader = std::thread::spawn(move || {
        let stdin = std::io::stdin();
        let mut stderr = std::io::stderr();
        for line in stdin.lock().lines() {
            let Ok(line) = line else { break };
            if handle_line(&stdin_handle, &line, &mut stderr) {
                return;
            }
            if SHUTDOWN.load(Ordering::SeqCst) {
                return;
            }
        }
        // stdin EOF: in --once mode that is the drain signal.
        if once {
            SHUTDOWN.store(true, Ordering::SeqCst);
        }
    });

    let ticker_handle = server.handle();
    let mut last_stats = std::time::Instant::now();
    while !SHUTDOWN.load(Ordering::SeqCst) {
        std::thread::sleep(std::time::Duration::from_millis(25));
        if opts.stats_secs > 0 && last_stats.elapsed().as_secs() >= opts.stats_secs {
            stats_line(&ticker_handle);
            last_stats = std::time::Instant::now();
        }
    }

    // Graceful drain: answer everything accepted, print the final stats
    // line, exit 0. The stdin thread may still be blocked on a read;
    // joining it only in --once mode (where EOF is guaranteed).
    let final_snap = server.drain();
    if once {
        let _ = stdin_reader.join();
    }
    match cpo_model::io::serde_json_error::to_string(&final_snap) {
        Ok(line) => eprintln!("{line}"),
        Err(e) => eprintln!("final stats unserializable: {e}"),
    }
    eprintln!(
        "serve: drained ({} accepted, {} replies, {} quarantined)",
        final_snap.accepted,
        final_snap.replies(),
        final_snap.quarantined
    );
    if let Some(path) = &opts.socket {
        let _ = std::fs::remove_file(path);
    }
    0
}
