//! `load_gen` — generate serve traffic and verify reply completeness.
//!
//! ```text
//! load_gen gen --mix duplicate|adversarial|flood|mixed --count N
//!              [--seed S] [--tenants T] [--deadline-ms D]
//!              [--garbage G] [--poison P]
//! load_gen verify --requests reqs.jsonl --responses replies.jsonl
//! ```
//!
//! `gen` writes JSONL `SolveRequest`s to stdout, every one carrying a
//! unique `id` (`lg-<i>`), a round-robin tenant, and — depending on the
//! mix — duplicate-heavy cache fodder, adversarial specs (infeasible
//! bounds, unsupported combinations, saturating exact plans), `G`
//! deliberately unparseable lines, and `P` poison requests (description
//! contains `POISON`, the marker the chaos drill panics on).
//!
//! `verify` replays the request file against a reply file and asserts
//! the serve contract: **every** line was answered exactly once — each
//! request id appears on exactly one reply, and unparseable request
//! lines are matched one-for-one by id-less `Rejected{Invalid}` replies.
//! Exit 0 when the contract holds, 1 with a diagnostic when it does not.
//!
//! Deterministic: same flags + seed → bytewise-identical stream.

use cpo_model::generator::section2_example;
use cpo_model::prelude::*;
use cpo_model::spec::Strategy;
use cpo_serve::{RejectReason, ServeOutcome, ServeReply};
use std::collections::HashMap;

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

fn instance() -> (AppSet, Platform) {
    let (apps, _) = section2_example();
    (apps, Platform::fully_homogeneous(3, vec![1.0, 3.0, 6.0, 8.0], 1.0).unwrap())
}

/// A duplicate-heavy spec: `slot` cycles a small set of distinct digests
/// (cache fodder).
fn duplicate_spec(slot: u64) -> ProblemSpec {
    let tb = 0.25 * (slot % 8 + 1) as f64;
    ProblemSpec::new(Objective::Energy, Strategy::Interval, CommModel::Overlap)
        .with_period_bounds(vec![tb, tb])
}

/// An adversarial spec: infeasible bounds, malformed bound counts,
/// unsupported strategy combinations, and budget-saturating exact plans.
fn adversarial_spec(slot: u64) -> ProblemSpec {
    match slot % 4 {
        // Infeasible: bounds far below any achievable period.
        0 => ProblemSpec::new(Objective::Energy, Strategy::Interval, CommModel::Overlap)
            .with_period_bounds(vec![1e-6, 1e-6]),
        // Malformed: wrong bound count (typed unsupported, never a
        // panic).
        1 => ProblemSpec::new(Objective::Energy, Strategy::Interval, CommModel::NoOverlap)
            .with_period_bounds(vec![2.0]),
        // Unsupported combination without fallback permissions.
        2 => ProblemSpec::new(Objective::Energy, Strategy::General, CommModel::Overlap)
            .with_period_bounds(vec![2.0, 2.0]),
        // Exact general search: cost estimate saturates — deadline bait.
        _ => {
            let mut s = ProblemSpec::new(Objective::Period, Strategy::General, CommModel::Overlap);
            s.hints.exact_fallback = true;
            s
        }
    }
}

struct GenOptions {
    mix: String,
    count: u64,
    seed: u64,
    tenants: u64,
    deadline_ms: Option<u64>,
    garbage: u64,
    poison: u64,
}

fn cmd_gen(opts: &GenOptions) -> i32 {
    let (apps, pf) = instance();
    let mut emitted = 0u64;
    for i in 0..opts.count {
        let r = splitmix64(opts.seed ^ i.wrapping_mul(0x2545f4914f6cdd1d));
        // Interleave garbage and poison deterministically through the
        // stream: the first `garbage` multiples of 17, the first
        // `poison` multiples of 13.
        if opts.garbage > 0 && i % 17 == 3 && i / 17 < opts.garbage {
            println!("{{\"this line is\": deliberately broken,,,");
            emitted += 1;
            continue;
        }
        let poison = opts.poison > 0 && i % 13 == 5 && i / 13 < opts.poison;
        let spec = if poison {
            duplicate_spec(0)
        } else {
            match opts.mix.as_str() {
                "duplicate" => duplicate_spec(r),
                "adversarial" => adversarial_spec(r),
                "flood" => duplicate_spec(0),
                // mixed: 3/4 duplicate-heavy, 1/4 adversarial.
                _ => {
                    if r.is_multiple_of(4) {
                        adversarial_spec(r >> 2)
                    } else {
                        duplicate_spec(r >> 2)
                    }
                }
            }
        };
        let description = if poison {
            format!("load_gen POISON #{i}")
        } else {
            format!("load_gen {} #{i}", opts.mix)
        };
        let tenant = if opts.mix == "flood" {
            "flooder".to_string()
        } else {
            format!("t{}", i % opts.tenants.max(1))
        };
        let mut req = SolveRequest::new(description, apps.clone(), pf.clone(), spec)
            .with_id(format!("lg-{i}"))
            .with_tenant(tenant);
        if let Some(d) = opts.deadline_ms {
            req = req.with_deadline_ms(d);
        }
        match req.to_json_compact() {
            Ok(line) => println!("{line}"),
            Err(e) => {
                eprintln!("request {i} unserializable: {e}");
                return 2;
            }
        }
        emitted += 1;
    }
    eprintln!("load_gen: emitted {emitted} lines (mix={})", opts.mix);
    0
}

fn cmd_verify(requests_path: &str, responses_path: &str) -> i32 {
    let read = |path: &str| -> Vec<String> {
        match std::fs::read_to_string(path) {
            Ok(text) => text.lines().filter(|l| !l.trim().is_empty()).map(String::from).collect(),
            Err(e) => {
                eprintln!("cannot read `{path}`: {e}");
                std::process::exit(2);
            }
        }
    };
    let requests = read(requests_path);
    let responses = read(responses_path);

    // What was asked: id → count for parseable lines, plus the garbage
    // line count.
    let mut want: HashMap<String, u64> = HashMap::new();
    let mut garbage = 0u64;
    for line in &requests {
        match SolveRequest::from_json(line) {
            Ok(req) => match req.id {
                Some(id) => *want.entry(id).or_insert(0) += 1,
                None => garbage += 1, // id-less requests verify like garbage
            },
            Err(_) => garbage += 1,
        }
    }

    // What was answered.
    let mut got: HashMap<String, u64> = HashMap::new();
    let mut idless = 0u64;
    let mut invalid_idless = 0u64;
    for line in &responses {
        match ServeReply::from_json(line) {
            Ok(reply) => match reply.id {
                Some(id) => *got.entry(id).or_insert(0) += 1,
                None => {
                    idless += 1;
                    if matches!(
                        reply.outcome,
                        ServeOutcome::Rejected { reason: RejectReason::Invalid, .. }
                    ) {
                        invalid_idless += 1;
                    }
                }
            },
            Err(e) => {
                eprintln!("verify: unparseable reply line: {e}\n  {line}");
                return 1;
            }
        }
    }

    let mut failures = 0u64;
    for (id, &n) in &want {
        let answered = got.get(id).copied().unwrap_or(0);
        if answered != n {
            eprintln!("verify: id `{id}` submitted {n}× but answered {answered}×");
            failures += 1;
        }
    }
    for id in got.keys() {
        if !want.contains_key(id) {
            eprintln!("verify: reply for never-submitted id `{id}`");
            failures += 1;
        }
    }
    if idless != garbage || invalid_idless != garbage {
        eprintln!(
            "verify: {garbage} garbage request lines but {idless} id-less replies \
             ({invalid_idless} typed Invalid)"
        );
        failures += 1;
    }
    if responses.len() != requests.len() {
        eprintln!(
            "verify: {} request lines vs {} reply lines",
            requests.len(),
            responses.len()
        );
        failures += 1;
    }
    if failures == 0 {
        eprintln!(
            "verify: ok — {} lines, every request answered exactly once \
             ({} garbage lines got typed Invalid replies)",
            requests.len(),
            garbage
        );
        0
    } else {
        eprintln!("verify: FAILED ({failures} contract violations)");
        1
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(String::as_str).unwrap_or("");
    let str_flag = |flag: &str| -> Option<String> {
        args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1).cloned())
    };
    let u64_flag = |flag: &str, default: u64| -> u64 {
        match args.iter().position(|a| a == flag) {
            Some(i) => match args.get(i + 1).and_then(|v| v.parse::<u64>().ok()) {
                Some(n) => n,
                None => {
                    eprintln!("{flag} needs a non-negative integer value");
                    std::process::exit(2);
                }
            },
            None => default,
        }
    };
    match cmd {
        "gen" => {
            let mix = str_flag("--mix").unwrap_or_else(|| "mixed".to_string());
            if !["duplicate", "adversarial", "flood", "mixed"].contains(&mix.as_str()) {
                eprintln!("--mix must be duplicate|adversarial|flood|mixed, got `{mix}`");
                std::process::exit(2);
            }
            let opts = GenOptions {
                mix,
                count: u64_flag("--count", 256),
                seed: u64_flag("--seed", 0x10ad),
                tenants: u64_flag("--tenants", 4),
                deadline_ms: str_flag("--deadline-ms").map(|v| match v.parse() {
                    Ok(n) => n,
                    Err(_) => {
                        eprintln!("--deadline-ms needs a non-negative integer value");
                        std::process::exit(2);
                    }
                }),
                garbage: u64_flag("--garbage", 0),
                poison: u64_flag("--poison", 0),
            };
            std::process::exit(cmd_gen(&opts));
        }
        "verify" => {
            let (Some(requests), Some(responses)) =
                (str_flag("--requests"), str_flag("--responses"))
            else {
                eprintln!("usage: load_gen verify --requests reqs.jsonl --responses replies.jsonl");
                std::process::exit(2);
            };
            std::process::exit(cmd_verify(&requests, &responses));
        }
        _ => {
            eprintln!(
                "usage: load_gen gen --mix duplicate|adversarial|flood|mixed --count N \
                 [--seed S] [--tenants T] [--deadline-ms D] [--garbage G] [--poison P]"
            );
            eprintln!("       load_gen verify --requests reqs.jsonl --responses replies.jsonl");
            std::process::exit(2);
        }
    }
}
