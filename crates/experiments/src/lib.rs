//! Library side of `cpo-experiments`: the trust subsystem (differential
//! path runner, repro-bundle export, replay, fuzz fleet) factored out of
//! the binary so the determinism guarantees are unit-testable.

pub mod serve_cli;
pub mod trust;
