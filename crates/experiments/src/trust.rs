//! The trust subsystem: differential execution, repro bundles, replay,
//! and the fuzz fleet.
//!
//! Every solver path in the workspace is supposed to be *bitwise*
//! interchangeable: direct routing, pre-planned routing, scratch reuse,
//! the batch engine, its memo cache, the wavefront simulator, the DAG
//! oracle, and fast-forward on/off must all tell the same story about an
//! instance. [`run_paths`] executes them all and reports any divergence;
//! [`export_bundle`] freezes a failure into a deterministic
//! [`ReproBundle`]; [`replay`] re-executes a bundle bit-for-bit; [`fuzz`]
//! hunts for divergences across the full scenario cross-product under a
//! time box.
//!
//! Exit-code convention shared by the `replay`/`fuzz`/`solve`/`batch`
//! subcommands: `0` ok, `1` mismatch (check failure, unreproduced bundle,
//! or fuzz findings), `2` usage/parse errors.

use cpo_core::router::{plan, route_planned, route_with, RouterScratch};
use cpo_engine::{Engine, EngineConfig};
use cpo_model::bundle::{
    BundleSource, EngineSnapshot, FailureContext, FailureKind, GenRecipe, Obs, PathObservation,
    PlatformKind, ReproBundle,
};
use cpo_model::generator::{AppGenConfig, PlatformGenConfig};
use cpo_model::hash::{digest_hex, hash_instance, hash_outcome, hash_spec};
use cpo_model::prelude::*;
use cpo_simulator::{simulate, simulate_reference_dag, simulate_wavefront, SimReport};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Environment variable that injects a deliberate solver corruption
/// (+1.0 on every routed `Solution` objective). Test-only: it exists so
/// the injected-divergence drill can prove the mismatch → bundle →
/// replay loop end-to-end without patching the solvers.
pub const CORRUPT_ENV: &str = "CPO_TRUST_CORRUPT";

/// Environment variable overriding where bundles are written
/// (default `repro-bundles/` under the current directory).
pub const BUNDLE_DIR_ENV: &str = "CPO_BUNDLE_DIR";

/// Where [`export_bundle`] writes.
pub fn bundle_dir() -> PathBuf {
    std::env::var_os(BUNDLE_DIR_ENV)
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("repro-bundles"))
}

/// Relative tolerance used by every `--check` comparison.
pub fn close(a: f64, b: f64) -> bool {
    (a - b).abs() < 1e-7 * (1.0 + a.abs().max(b.abs()))
}

/// Apply the [`CORRUPT_ENV`] fault injection to an outcome.
pub fn maybe_corrupt(out: SolveOutcome) -> SolveOutcome {
    if std::env::var_os(CORRUPT_ENV).is_none() {
        return out;
    }
    match out {
        SolveOutcome::Solution(mut s) => {
            s.objective += 1.0;
            SolveOutcome::Solution(s)
        }
        other => other,
    }
}

fn panic_text(panic: &(dyn std::any::Any + Send)) -> String {
    panic
        .downcast_ref::<&str>()
        .map(|s| s.to_string())
        .or_else(|| panic.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "unknown panic".into())
}

/// Snapshot an engine configuration into a bundle.
pub fn engine_snapshot(cfg: &EngineConfig) -> EngineSnapshot {
    EngineSnapshot {
        threads: cfg.threads,
        cache: cfg.cache,
        min_parallel_cost: cfg.min_parallel_cost,
    }
}

/// Rebuild the engine configuration a bundle was recorded under.
pub fn snapshot_config(snap: &EngineSnapshot) -> EngineConfig {
    EngineConfig {
        threads: snap.threads,
        cache: snap.cache,
        min_parallel_cost: snap.min_parallel_cost,
        ..EngineConfig::default()
    }
}

// ---------------------------------------------------------------------------
// check_outcome — the --check cross-validation (analytic + simulated)
// ---------------------------------------------------------------------------

/// Cross-validate an outcome against its request: analytic re-evaluation
/// plus a simulation of every plain mapping over `datasets` data sets
/// (through the wavefront core backing `simulate`); the measured values
/// must agree with the reported objective. Simulator panics (e.g. on
/// NaN/infinity-contaminated instances, which it rejects loudly) are
/// caught and reported as check failures — a poisoned item must never
/// abort its batch.
pub fn check_outcome(req: &SolveRequest, out: &SolveOutcome, datasets: usize) -> Result<(), String> {
    let apps = &req.apps;
    let pf = &req.platform;
    let comm = req.problem.comm;
    // One validation, one analytic evaluation and one simulation per
    // mapping, however many reported criteria it must agree with.
    let check_plain = |mapping: &Mapping,
                       expected: &[(Objective, f64)],
                       what: &str|
     -> Result<(), String> {
        mapping
            .validate(apps, pf)
            .map_err(|e| format!("{what}: invalid mapping: {e}"))?;
        let e = Evaluator::new(apps, pf).evaluate(mapping, comm);
        // A certifiable solution evaluates finite on every criterion; a
        // non-finite value means numeric contamination (e.g. an infinite
        // static energy) slipped past the parse-time guards.
        if !(e.period.is_finite() && e.latency.is_finite() && e.energy.is_finite()) {
            return Err(format!(
                "{what}: mapping evaluates non-finite (period {}, latency {}, energy {}) — \
                 poisoned instance",
                e.period, e.latency, e.energy
            ));
        }
        if !req.problem.constraints.satisfied_by(&e.periods, &e.latencies, e.energy) {
            return Err(format!("{what}: solution violates the spec constraints"));
        }
        let sim = catch_unwind(AssertUnwindSafe(|| simulate(apps, pf, mapping, comm, datasets)))
            .map_err(|p| format!("{what}: simulator panicked: {}", panic_text(&*p)))?;
        for &(criterion, objective) in expected {
            if !objective.is_finite() {
                return Err(format!("{what}: non-finite reported {}", criterion.name()));
            }
            let (analytic, measured) = match criterion {
                Objective::Period => (e.period, sim.period),
                Objective::Latency => (e.latency, sim.latency),
                Objective::Energy => (e.energy, sim.power),
                _ => unreachable!("entries carry scalar criteria"),
            };
            if !close(analytic, objective) {
                return Err(format!(
                    "{what}: analytic {} {analytic} != reported {objective}",
                    criterion.name()
                ));
            }
            if !close(measured, objective) {
                return Err(format!(
                    "{what}: simulated {} {measured} != reported {objective}",
                    criterion.name()
                ));
            }
        }
        Ok(())
    };
    match out {
        SolveOutcome::Solution(s) => match &s.mapping {
            SolvedMapping::Plain(m) => {
                check_plain(m, &[(req.problem.objective, s.objective)], "solution")
            }
            SolvedMapping::Replicated(m) => {
                m.validate(apps, pf).map_err(|e| format!("replicated mapping: {e}"))?;
                let ev = cpo_model::replication::ReplicatedEvaluator::new(apps, pf);
                let analytic = match req.problem.objective {
                    Objective::Period => ev.period(m, comm),
                    Objective::Latency => ev.latency(m),
                    Objective::Energy => ev.energy(m),
                    _ => return Err("front outcome with a replicated mapping".into()),
                };
                if close(analytic, s.objective) {
                    Ok(())
                } else {
                    Err(format!("replicated: analytic {analytic} != reported {}", s.objective))
                }
            }
            SolvedMapping::General(m) => {
                m.validate(apps, pf).map_err(|e| format!("general mapping: {e}"))?;
                let ev = cpo_model::sharing::GeneralEvaluator::new(apps, pf);
                let analytic = match req.problem.objective {
                    Objective::Period => ev.period(m, comm),
                    Objective::Latency => ev.latency(m),
                    Objective::Energy => ev.energy(m),
                    _ => return Err("front outcome with a general mapping".into()),
                };
                if close(analytic, s.objective) {
                    Ok(())
                } else {
                    Err(format!("general: analytic {analytic} != reported {}", s.objective))
                }
            }
        },
        SolveOutcome::Front(entries) => {
            let (primary, secondary) = match req.problem.objective {
                Objective::PeriodEnergyFront => (Objective::Period, Objective::Energy),
                Objective::PeriodLatencyFront => (Objective::Period, Objective::Latency),
                other => return Err(format!("front outcome for {} spec", other.name())),
            };
            for (i, entry) in entries.iter().enumerate() {
                let m = entry
                    .mapping
                    .as_plain()
                    .ok_or_else(|| format!("front point {i}: non-plain mapping"))?;
                check_plain(
                    m,
                    &[(primary, entry.achieved), (secondary, entry.objective)],
                    &format!("front point {i}"),
                )?;
            }
            Ok(())
        }
        SolveOutcome::Infeasible { .. } | SolveOutcome::Unsupported { .. } => Ok(()),
    }
}

// ---------------------------------------------------------------------------
// run_paths — every applicable execution path, observed bitwise
// ---------------------------------------------------------------------------

/// What [`run_paths`] saw.
#[derive(Debug, Clone)]
pub struct PathReport {
    /// One observation per executed path, in a fixed order.
    pub paths: Vec<PathObservation>,
    /// Human-readable divergence descriptions (empty = all paths agree).
    pub divergences: Vec<String>,
    /// The routed outcome, for further checking by the caller.
    pub canonical: Option<SolveOutcome>,
}

fn observe(name: &str, out: &SolveOutcome) -> PathObservation {
    let mut values = Vec::new();
    if let Some(obj) = out.objective() {
        values.push(Obs::of("objective", obj));
    }
    PathObservation {
        path: name.into(),
        digest: digest_hex(hash_outcome(out)),
        values,
        summary: out.kind().to_string(),
    }
}

fn run_solver_path(
    name: &str,
    f: impl FnOnce() -> SolveOutcome,
) -> (PathObservation, Option<SolveOutcome>) {
    match catch_unwind(AssertUnwindSafe(f)) {
        Ok(out) => (observe(name, &out), Some(out)),
        Err(p) => (
            PathObservation {
                path: name.into(),
                digest: String::new(),
                values: Vec::new(),
                summary: format!("panicked: {}", panic_text(&*p)),
            },
            None,
        ),
    }
}

fn observe_sim(name: &str, sim: Result<SimReport, String>) -> PathObservation {
    match sim {
        Ok(rep) => PathObservation {
            path: name.into(),
            digest: String::new(),
            values: vec![
                Obs::of("period", rep.period),
                Obs::of("latency", rep.latency),
                Obs::of("power", rep.power),
            ],
            summary: "simulated".into(),
        },
        Err(what) => PathObservation {
            path: name.into(),
            digest: String::new(),
            values: Vec::new(),
            summary: format!("panicked: {what}"),
        },
    }
}

fn guard_sim(f: impl FnOnce() -> SimReport) -> Result<SimReport, String> {
    catch_unwind(AssertUnwindSafe(f)).map_err(|p| panic_text(&*p))
}

/// Execute every applicable path for `req` and compare them bitwise:
///
/// * solver paths — `routed` (direct [`cpo_core::route`], where the
///   [`CORRUPT_ENV`] drill hook applies), `planned` (plan +
///   `route_planned`), `scratch-reused` (second solve on a warm
///   [`RouterScratch`]), `engine` (batch engine under `cfg`) and
///   `memo-cached` (second engine solve, served by the cache when on) —
///   their outcome digests must be identical;
/// * simulation paths, when the engine outcome is a plain-mapping
///   solution — `sim-wavefront`, `sim-dag` (the independent DAG oracle)
///   and `sim-no-ff` (fast-forward disabled) must agree bitwise on
///   period/latency/power, and the measured value of the optimized
///   criterion must match the reported objective within tolerance (the
///   `analytic` path re-derives it from the evaluator).
pub fn run_paths(req: &SolveRequest, cfg: &EngineConfig, datasets: usize) -> PathReport {
    let apps = &req.apps;
    let pf = &req.platform;
    let spec = &req.problem;
    let mut paths = Vec::new();
    let mut divergences = Vec::new();
    let mut outcomes: Vec<(String, Option<SolveOutcome>)> = Vec::new();

    let (obs, out) = run_solver_path("routed", || maybe_corrupt(cpo_core::route(apps, pf, spec)));
    let canonical = out.clone();
    paths.push(obs);
    outcomes.push(("routed".into(), out));

    let (obs, out) = run_solver_path("planned", || match plan(apps, pf, spec) {
        Ok(p) => {
            let mut scratch = RouterScratch::new();
            route_planned(apps, pf, spec, p, &mut scratch)
        }
        Err(reason) => SolveOutcome::Unsupported { reason },
    });
    paths.push(obs);
    outcomes.push(("planned".into(), out));

    let (obs, out) = run_solver_path("scratch-reused", || {
        let mut scratch = RouterScratch::new();
        let _ = route_with(apps, pf, spec, &mut scratch);
        route_with(apps, pf, spec, &mut scratch)
    });
    paths.push(obs);
    outcomes.push(("scratch-reused".into(), out));

    let engine = Engine::new(cfg.clone());
    let (obs, out) = run_solver_path("engine", || engine.solve(apps, pf, spec));
    paths.push(obs);
    let engine_out = out.clone();
    outcomes.push(("engine".into(), out));

    let (obs, out) = run_solver_path("memo-cached", || engine.solve(apps, pf, spec));
    paths.push(obs);
    outcomes.push(("memo-cached".into(), out));

    // The routed path is the reference (minus the drill hook, every other
    // path is the same deterministic router behind a different front
    // door).
    let reference = outcomes[0].1.as_ref().map(hash_outcome);
    for (name, out) in &outcomes[1..] {
        match (reference, out.as_ref().map(hash_outcome)) {
            (Some(want), Some(got)) if want == got => {}
            (Some(_), Some(_)) => {
                divergences.push(format!("solver path `{name}` disagrees with `routed` bitwise"));
            }
            _ => divergences.push(format!(
                "solver path `{name}` or `routed` panicked — no comparable outcome"
            )),
        }
    }

    // Simulation cross-check on the engine outcome (identical to routed
    // when no divergence): plain-mapping solutions only — replicated and
    // general mappings have no wavefront semantics yet.
    if let Some(SolveOutcome::Solution(s)) = &engine_out {
        if let SolvedMapping::Plain(m) = &s.mapping {
            let comm = spec.comm;
            let wavefront = guard_sim(|| simulate(apps, pf, m, comm, datasets));
            let dag = guard_sim(|| simulate_reference_dag(apps, pf, m, comm, datasets, usize::MAX));
            let no_ff =
                guard_sim(|| simulate_wavefront(apps, pf, m, comm, datasets, usize::MAX, false));
            let sims = [("sim-wavefront", &wavefront), ("sim-dag", &dag), ("sim-no-ff", &no_ff)];
            for (name, sim) in &sims {
                paths.push(observe_sim(name, (*sim).clone()));
            }
            match (&wavefront, &dag, &no_ff) {
                (Ok(w), Ok(d), Ok(n)) => {
                    for (name, other) in [("sim-dag", d), ("sim-no-ff", n)] {
                        if w.period.to_bits() != other.period.to_bits()
                            || w.latency.to_bits() != other.latency.to_bits()
                            || w.power.to_bits() != other.power.to_bits()
                        {
                            divergences.push(format!(
                                "`{name}` disagrees with `sim-wavefront` bitwise"
                            ));
                        }
                    }
                    let measured = match spec.objective {
                        Objective::Period => Some(w.period),
                        Objective::Latency => Some(w.latency),
                        Objective::Energy => Some(w.power),
                        _ => None,
                    };
                    if let Some(measured) = measured {
                        if !close(measured, s.objective) {
                            divergences.push(format!(
                                "simulated {} {measured} != reported objective {}",
                                spec.objective.name(),
                                s.objective
                            ));
                        }
                    }
                }
                _ => divergences.push("a simulation path panicked".into()),
            }
            let analytic = catch_unwind(AssertUnwindSafe(|| {
                Evaluator::new(apps, pf).evaluate(m, comm)
            }));
            match analytic {
                Ok(e) => {
                    paths.push(PathObservation {
                        path: "analytic".into(),
                        digest: String::new(),
                        values: vec![
                            Obs::of("period", e.period),
                            Obs::of("latency", e.latency),
                            Obs::of("energy", e.energy),
                        ],
                        summary: "evaluated".into(),
                    });
                    let value = match spec.objective {
                        Objective::Period => Some(e.period),
                        Objective::Latency => Some(e.latency),
                        Objective::Energy => Some(e.energy),
                        _ => None,
                    };
                    if let Some(value) = value {
                        if !close(value, s.objective) {
                            divergences.push(format!(
                                "analytic {} {value} != reported objective {}",
                                spec.objective.name(),
                                s.objective
                            ));
                        }
                    }
                }
                Err(p) => divergences.push(format!("evaluator panicked: {}", panic_text(&*p))),
            }
        }
    }

    PathReport { paths, divergences, canonical }
}

// ---------------------------------------------------------------------------
// export
// ---------------------------------------------------------------------------

/// Freeze a failure into a bundle under [`bundle_dir`] and return the
/// written path. The per-path observations are gathered by re-running
/// [`run_paths`] on the request, so the bundle records what every path
/// saw at export time.
pub fn export_bundle(
    kind: FailureKind,
    message: String,
    item_index: Option<usize>,
    source: BundleSource,
    cfg: &EngineConfig,
    datasets: usize,
) -> Result<PathBuf, String> {
    let req = source.materialize()?;
    let report = run_paths(&req, cfg, datasets);
    let bundle = ReproBundle::new(
        "exported by cpo-experiments",
        FailureContext { kind, message, item_index },
        source,
        engine_snapshot(cfg),
        datasets,
        report.paths,
    )?;
    bundle.write_to_dir(&bundle_dir())
}

// ---------------------------------------------------------------------------
// replay
// ---------------------------------------------------------------------------

/// The verdict of one [`replay`].
#[derive(Debug, Clone)]
pub struct ReplayReport {
    /// Every recorded path reproduced bit-for-bit.
    pub confirmed: bool,
    /// Per-path comparison lines (human-readable).
    pub details: Vec<String>,
    /// Divergences observed in the fresh run.
    pub divergences: Vec<String>,
}

/// Re-execute a bundle bit-for-bit: rebuild the request (verifying the
/// recorded structural digests, which guards against generator drift),
/// re-run every path under the recorded engine configuration, and compare
/// outcome digests and bitwise observations against what was recorded.
pub fn replay(bundle: &ReproBundle) -> Result<ReplayReport, String> {
    let req = bundle.request()?;
    let inst = digest_hex(hash_instance(&req.apps, &req.platform));
    if inst != bundle.instance_digest {
        return Err(format!(
            "instance digest drift: bundle recorded {}, source regenerates {inst} — \
             the generators changed since export",
            bundle.instance_digest
        ));
    }
    let spec_digest = digest_hex(hash_spec(&req.problem));
    if spec_digest != bundle.spec_digest {
        return Err(format!(
            "spec digest drift: bundle recorded {}, source regenerates {spec_digest}",
            bundle.spec_digest
        ));
    }
    let cfg = snapshot_config(&bundle.engine);
    let fresh = run_paths(&req, &cfg, bundle.datasets);
    let mut confirmed = true;
    let mut details = Vec::new();
    for rec in &bundle.paths {
        match fresh.paths.iter().find(|p| p.path == rec.path) {
            Some(now) if now.digest == rec.digest && now.values == rec.values => {
                details.push(format!("{}: reproduced bit-for-bit", rec.path));
            }
            Some(now) => {
                confirmed = false;
                details.push(format!(
                    "{}: NOT reproduced (recorded digest `{}` values {:?}, got `{}` {:?})",
                    rec.path,
                    rec.digest,
                    rec.values.iter().map(|o| &o.bits).collect::<Vec<_>>(),
                    now.digest,
                    now.values.iter().map(|o| &o.bits).collect::<Vec<_>>(),
                ));
            }
            None => {
                confirmed = false;
                details.push(format!("{}: path was not re-executed", rec.path));
            }
        }
    }
    Ok(ReplayReport { confirmed, details, divergences: fresh.divergences })
}

// ---------------------------------------------------------------------------
// fuzz
// ---------------------------------------------------------------------------

/// Dataset count used by the fuzz fleet's simulation paths: small enough
/// for throughput, large enough that steady state is reached and the
/// fast-forward path actually engages.
pub const FUZZ_DATASETS: usize = 24;

/// One fuzz scenario: a cell of the cross-product.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// The optimized criterion.
    pub objective: Objective,
    /// The mapping rule.
    pub strategy: Strategy,
    /// The communication model.
    pub comm: CommModel,
    /// The platform family.
    pub platform: PlatformKind,
}

/// The full scenario cross-product the fleet sweeps: every
/// objective × strategy × comm-model combination over dedicated
/// homogeneous/heterogeneous platforms and the Benes multistage fabric.
/// Unsupported cells still run — a typed `Unsupported` answer must also
/// be bitwise stable across paths.
pub fn scenario_grid() -> Vec<Scenario> {
    let objectives = [
        Objective::Period,
        Objective::Latency,
        Objective::Energy,
        Objective::PeriodEnergyFront,
        Objective::PeriodLatencyFront,
    ];
    let strategies =
        [Strategy::OneToOne, Strategy::Interval, Strategy::Replicated, Strategy::General];
    let comms = [CommModel::Overlap, CommModel::NoOverlap];
    let platforms = [
        PlatformKind::FullyHomogeneous,
        PlatformKind::CommHomogeneous,
        PlatformKind::FullyHeterogeneous,
        PlatformKind::Multistage { bandwidth: 1.0, hop_latency: 0.05 },
    ];
    let mut grid = Vec::new();
    for &objective in &objectives {
        for &strategy in &strategies {
            for &comm in &comms {
                for platform in &platforms {
                    grid.push(Scenario { objective, strategy, comm, platform: platform.clone() });
                }
            }
        }
    }
    grid
}

/// Build the deterministic recipe for `(scenario, master seed, iteration)`.
/// Instance sizes stay tiny (≤3 apps, ≤4 stages, ≤6 processors) so one
/// iteration sweeps the whole grid in well under a second; constraints
/// are derived from the generated instance so bounded cells are usually
/// feasible.
pub fn make_recipe(scenario: &Scenario, seed: u64, iter: u64, cell: u64) -> GenRecipe {
    let salt = seed ^ iter.wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ cell.wrapping_mul(0x85eb_ca6b);
    let app_cfg = AppGenConfig {
        apps: 1 + (salt % 3) as usize,
        stages: (1, 4),
        work: (1.0, 10.0),
        data: (0.0, 5.0),
        integral: true,
    };
    let platform_cfg = PlatformGenConfig {
        procs: 2 + (salt.rotate_right(8) % 5) as usize,
        modes: (1, 3),
        speed: (1.0, 8.0),
        bandwidth: (1.0, 5.0),
        e_stat: (0.0, 0.0),
        integral: true,
    };
    // The JSON layer stores numbers as f64 (exact only up to 2^53), so
    // recipe seeds stay within 48 bits — replay's digest-drift guard
    // would loudly reject a bundle whose seed did not round-trip.
    const SEED_MASK: u64 = (1 << 48) - 1;
    let app_seed = salt.wrapping_mul(0xff51_afd7_ed55_8ccd) & SEED_MASK;
    let platform_seed = (app_seed ^ 0xc4ce_b9fe_1a85_ec53) & SEED_MASK;
    let mut spec = ProblemSpec::new(scenario.objective, scenario.strategy, scenario.comm);
    if scenario.objective == Objective::Energy {
        // Energy minimization needs a period bound to be well-posed; one
        // derived from the actual total work is usually feasible, and an
        // infeasible draw is itself a valid differential check.
        let apps = cpo_model::generator::random_apps(&app_cfg, app_seed);
        let bounds: Vec<f64> =
            apps.apps.iter().map(|a| a.total_work() / 2.0 + 2.0).collect();
        spec = spec.with_period_bounds(bounds);
    }
    if matches!(scenario.objective, Objective::PeriodEnergyFront | Objective::PeriodLatencyFront) {
        // Single-threaded sweeps: the front solvers are deterministic for
        // every thread count, but one worker keeps tiny instances cheap.
        spec.hints.sweep_threads = Some(1);
    }
    GenRecipe {
        app_cfg,
        platform_cfg,
        platform_kind: scenario.platform.clone(),
        app_seed,
        platform_seed,
        spec,
    }
}

/// What one [`fuzz`] campaign did.
#[derive(Debug, Clone)]
pub struct FuzzReport {
    /// Completed grid sweeps.
    pub iterations: u64,
    /// Instances executed (scenario cells × sweeps, counting partials).
    pub executed: u64,
    /// Grid width (scenario count).
    pub scenarios: usize,
    /// Bundles written, one per divergent instance.
    pub bundles: Vec<PathBuf>,
}

/// Time-boxed, deterministically seeded differential fuzz: sweep the full
/// [`scenario_grid`] with fresh seeded instances until `seconds` elapse,
/// running every applicable path per instance ([`run_paths`] +
/// [`check_outcome`]) and bundling any divergence. The sequence of
/// instances depends only on `seed`, never on timing — the time box only
/// decides how far down the sequence the campaign gets.
pub fn fuzz(seconds: u64, seed: u64, cfg: &EngineConfig) -> FuzzReport {
    let deadline = Instant::now() + Duration::from_secs(seconds);
    let grid = scenario_grid();
    let mut report = FuzzReport {
        iterations: 0,
        executed: 0,
        scenarios: grid.len(),
        bundles: Vec::new(),
    };
    'outer: loop {
        for (cell, scenario) in grid.iter().enumerate() {
            if Instant::now() >= deadline {
                break 'outer;
            }
            let recipe = make_recipe(scenario, seed, report.iterations, cell as u64);
            report.executed += 1;
            let req = match recipe.materialize() {
                Ok(req) => req,
                Err(e) => {
                    // A recipe that cannot materialize is itself a finding.
                    if let Ok(path) = export_bundle(
                        FailureKind::DifferentialMismatch,
                        format!("recipe failed to materialize: {e}"),
                        None,
                        BundleSource::Generated(recipe),
                        cfg,
                        FUZZ_DATASETS,
                    ) {
                        report.bundles.push(path);
                    }
                    continue;
                }
            };
            let paths = run_paths(&req, cfg, FUZZ_DATASETS);
            let mut problems = paths.divergences.clone();
            if let Some(out) = &paths.canonical {
                if let Err(e) = check_outcome(&req, out, FUZZ_DATASETS) {
                    problems.push(format!("check: {e}"));
                }
            }
            if !problems.is_empty() {
                match export_bundle(
                    FailureKind::DifferentialMismatch,
                    problems.join("; "),
                    None,
                    BundleSource::Generated(recipe),
                    cfg,
                    FUZZ_DATASETS,
                ) {
                    Ok(path) => report.bundles.push(path),
                    Err(e) => eprintln!("fuzz: could not write bundle: {e}"),
                }
            }
        }
        report.iterations += 1;
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_grid_is_the_full_cross_product() {
        let grid = scenario_grid();
        assert_eq!(grid.len(), 5 * 4 * 2 * 4);
    }

    #[test]
    fn recipes_are_deterministic_in_their_inputs() {
        let grid = scenario_grid();
        let a = make_recipe(&grid[7], 42, 3, 7);
        let b = make_recipe(&grid[7], 42, 3, 7);
        assert_eq!(a, b);
        let c = make_recipe(&grid[7], 43, 3, 7);
        assert_ne!(a.app_seed, c.app_seed);
    }
}
