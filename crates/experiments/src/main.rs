//! `cpo-experiments` — regenerate every table and figure of the paper.
//!
//! Subcommands:
//!
//! * `fig1`    — the Section 2 / Figure 1 motivating example numbers;
//! * `table1`  — empirical certification of the mono-criterion complexity
//!   table (polynomial cells vs exhaustive search);
//! * `table2`  — same for the multi-criteria table;
//! * `gadgets` — NP-hardness reduction fidelity + exact-solver blow-up;
//! * `scaling` — runtime scaling of every polynomial algorithm;
//! * `pareto`  — period/energy trade-off staircases;
//! * `all`     — everything above, in order (default).
//!
//! Plus the typed front door over the problem IR:
//!
//! * `solve <spec.json> [--check] [--threads N] [--datasets N]` — solve
//!   one `SolveRequest` (instance + `ProblemSpec`) through the router and
//!   print the `SolveOutcome` as JSON;
//! * `batch <specs.jsonl> [--check] [--threads N] [--datasets N]` — run a
//!   JSONL batch through the `cpo_engine` work-stealing pool; one outcome
//!   line per input line, in input order, never aborting on per-item
//!   failures;
//! * `spec-example [batch|large|benes]` — print the runnable example
//!   request (or the mixed feasible/infeasible batch, the large-scale
//!   wavefront soak, or the Benes multistage-fabric instance) committed
//!   under `examples/specs/`.
//!
//! And the trust subsystem (see the `trust` module of this crate):
//!
//! * `replay <bundle.json>` — re-execute a repro bundle bit-for-bit and
//!   report whether the recorded observations reproduce (exit 0) or not
//!   (exit 1);
//! * `fuzz [--seconds N] [--seed S] [--threads N]` — time-boxed,
//!   deterministically seeded differential fuzz over the full scenario
//!   cross-product; any divergence is frozen into a bundle under
//!   `repro-bundles/` (override with `CPO_BUNDLE_DIR`) and exits 1.
//!
//! `--check` closes the loop end-to-end: every routed solution is
//! re-evaluated analytically *and* executed in the simulator (the
//! wavefront core) over `--datasets` data sets (default 64; CI soaks the
//! committed large-scale spec at one million), and the measured
//! period/latency/energy must agree with the reported objective.
//!
//! Every experiment is seeded; outputs are the markdown rows recorded in
//! EXPERIMENTS.md.

use cpo_core::bi::period_energy::{min_energy_interval_fully_hom, min_energy_one_to_one_matching};
use cpo_core::bi::period_latency::{
    min_latency_under_period_fully_hom, min_period_under_latency_fully_hom,
};
use cpo_core::exact::{exact_optimize, ExactConfig, SpeedPolicy};
use cpo_core::heuristics::{local_search, LocalSearchConfig};
use cpo_core::mono::latency::min_latency_interval_comm_hom;
use cpo_core::mono::period_interval::minimize_global_period;
use cpo_core::mono::period_one_to_one::min_period_one_to_one_comm_hom;
use cpo_core::tri::multimodal::{branch_and_bound_tri_counted, tri_feasible};
use cpo_core::tri::unimodal::min_latency_tri_unimodal;
use cpo_core::{Criterion, MappingKind};
use cpo_model::gadgets::*;
use cpo_model::generator::*;
use cpo_model::prelude::*;
use cpo_experiments::serve_cli;
use cpo_experiments::trust::{self, check_outcome, close, maybe_corrupt};
use cpo_simulator::simulate;
use std::time::Instant;

fn status(ok: bool) -> &'static str {
    if ok {
        "ok"
    } else {
        "MISMATCH"
    }
}

// ---------------------------------------------------------------------------
// fig1
// ---------------------------------------------------------------------------

fn fig1() {
    println!("\n## FIG1 — Section 2 motivating example\n");
    println!("| quantity | paper | measured | simulated | status |");
    println!("|---|---|---|---|---|");
    let (apps, pf) = section2_example();
    let ev = Evaluator::new(&apps, &pf);
    let cfg_max = ExactConfig {
        kind: MappingKind::Interval,
        model: CommModel::Overlap,
        speed: SpeedPolicy::MaxOnly,
    };
    let cfg_all = ExactConfig { speed: SpeedPolicy::All, ..cfg_max };

    let t = exact_optimize(&apps, &pf, cfg_max, Criterion::Period, &Thresholds::none()).unwrap();
    let sim_t = simulate(&apps, &pf, &t.mapping, CommModel::Overlap, 64).period;
    println!(
        "| minimum period (Eq. 1) | 1 | {:.3} | {:.3} | {} |",
        t.objective,
        sim_t,
        status(close(t.objective, 1.0) && close(sim_t, 1.0))
    );

    let l = min_latency_interval_comm_hom(&apps, &pf).unwrap();
    let sim_l = simulate(&apps, &pf, &l.mapping, CommModel::Overlap, 8).latency;
    println!(
        "| minimum latency (Eq. 2) | 2.75 | {:.3} | {:.3} | {} |",
        l.objective,
        sim_l,
        status(close(l.objective, 2.75) && close(sim_l, 2.75))
    );

    let e = exact_optimize(&apps, &pf, cfg_all, Criterion::Energy, &Thresholds::none()).unwrap();
    let period_at_e = ev.period(&e.mapping, CommModel::Overlap);
    println!(
        "| minimum energy | 10 | {:.1} | — | {} |",
        e.objective,
        status(close(e.objective, 10.0))
    );
    println!(
        "| period at minimum energy | 14 | {:.3} | — | {} |",
        period_at_e,
        status(close(period_at_e, 14.0))
    );

    let th = Thresholds::uniform_period(2.0, 2);
    let comp = exact_optimize(&apps, &pf, cfg_all, Criterion::Energy, &th).unwrap();
    println!(
        "| energy under period ≤ 2 | 46 | {:.1} | — | {} |",
        comp.objective,
        status(close(comp.objective, 46.0))
    );
    let energy_fast = ev.energy(&t.mapping);
    println!(
        "| energy of the period-optimal mapping | 136 | {:.1} | — | {} |",
        energy_fast,
        status(close(energy_fast, 136.0))
    );
}

// ---------------------------------------------------------------------------
// table1 / table2 certification harness
// ---------------------------------------------------------------------------

struct Cert {
    agree: usize,
    total: usize,
    feasible: usize,
}

impl Cert {
    fn row(&self, name: &str, algo: &str) -> String {
        format!(
            "| {} | {} | {}/{} optimal (on {} feasible) | {} |",
            name,
            algo,
            self.agree,
            self.total,
            self.feasible,
            status(self.agree == self.total)
        )
    }
}

fn certify(
    seeds: u64,
    mut fast: impl FnMut(u64) -> Option<f64>,
    mut brute: impl FnMut(u64) -> Option<f64>,
) -> Cert {
    let mut agree = 0;
    let mut feasible = 0;
    for seed in 0..seeds {
        let f = fast(seed);
        let b = brute(seed);
        match (f, b) {
            (None, None) => agree += 1,
            (Some(x), Some(y)) => {
                feasible += 1;
                if close(x, y) {
                    agree += 1;
                }
            }
            _ => {}
        }
    }
    Cert { agree, total: seeds as usize, feasible }
}

fn table1() {
    println!("\n## TABLE 1 — mono-criterion complexity, empirical certification\n");
    println!("| cell | algorithm | result | status |");
    println!("|---|---|---|---|");
    const SEEDS: u64 = 100;

    // Period / one-to-one / com-hom (Theorem 1).
    let app_cfg = AppGenConfig { apps: 2, stages: (1, 3), ..Default::default() };
    let cert = certify(
        SEEDS,
        |s| {
            let apps = random_apps(&app_cfg, s);
            let pf = random_comm_homogeneous(
                &PlatformGenConfig { procs: apps.total_stages() + 1, modes: (1, 2), ..Default::default() },
                s + 1000,
            );
            min_period_one_to_one_comm_hom(&apps, &pf, CommModel::Overlap).map(|x| x.objective)
        },
        |s| {
            let apps = random_apps(&app_cfg, s);
            let pf = random_comm_homogeneous(
                &PlatformGenConfig { procs: apps.total_stages() + 1, modes: (1, 2), ..Default::default() },
                s + 1000,
            );
            exact_optimize(
                &apps,
                &pf,
                ExactConfig {
                    kind: MappingKind::OneToOne,
                    model: CommModel::Overlap,
                    speed: SpeedPolicy::MaxOnly,
                },
                Criterion::Period,
                &Thresholds::none(),
            )
            .map(|x| x.objective)
        },
    );
    println!("{}", cert.row("Period / one-to-one / com-hom", "Thm 1: binary search + greedy"));

    // Period / interval / fully-hom (Theorem 3, Algorithm 2).
    let app_cfg2 = AppGenConfig { apps: 2, stages: (2, 4), ..Default::default() };
    let cert = certify(
        SEEDS,
        |s| {
            let apps = random_apps(&app_cfg2, s);
            let pf = random_fully_homogeneous(
                &PlatformGenConfig { procs: 4, modes: (1, 2), ..Default::default() },
                s + 2000,
            );
            minimize_global_period(&apps, &pf, CommModel::Overlap).map(|x| x.objective)
        },
        |s| {
            let apps = random_apps(&app_cfg2, s);
            let pf = random_fully_homogeneous(
                &PlatformGenConfig { procs: 4, modes: (1, 2), ..Default::default() },
                s + 2000,
            );
            exact_optimize(
                &apps,
                &pf,
                ExactConfig {
                    kind: MappingKind::Interval,
                    model: CommModel::Overlap,
                    speed: SpeedPolicy::MaxOnly,
                },
                Criterion::Period,
                &Thresholds::none(),
            )
            .map(|x| x.objective)
        },
    );
    println!("{}", cert.row("Period / interval / fully-hom", "Thm 3: DP + Algorithm 2"));
    println!("| Period / interval / special-app | NP-complete (Thm 5) | see `gadgets` | ok |");
    println!("| Latency / one-to-one / special-app | NP-complete (Thm 9) | see `gadgets` | ok |");

    // Latency / interval / com-hom (Theorem 12).
    let app_cfg3 = AppGenConfig { apps: 3, stages: (1, 3), ..Default::default() };
    let cert = certify(
        SEEDS,
        |s| {
            let apps = random_apps(&app_cfg3, s);
            let pf = random_comm_homogeneous(
                &PlatformGenConfig { procs: 4, modes: (1, 3), ..Default::default() },
                s + 3000,
            );
            min_latency_interval_comm_hom(&apps, &pf).map(|x| x.objective)
        },
        |s| {
            let apps = random_apps(&app_cfg3, s);
            let pf = random_comm_homogeneous(
                &PlatformGenConfig { procs: 4, modes: (1, 3), ..Default::default() },
                s + 3000,
            );
            exact_optimize(
                &apps,
                &pf,
                ExactConfig {
                    kind: MappingKind::Interval,
                    model: CommModel::Overlap,
                    speed: SpeedPolicy::MaxOnly,
                },
                Criterion::Latency,
                &Thresholds::none(),
            )
            .map(|x| x.objective)
        },
    );
    println!("{}", cert.row("Latency / interval / com-hom", "Thm 12: greedy on A fastest"));
}

fn table2() {
    println!("\n## TABLE 2 — multi-criteria complexity, empirical certification\n");
    println!("| cell | algorithm | result | status |");
    println!("|---|---|---|---|");
    const SEEDS: u64 = 60;

    // Period/Latency (Theorems 15/16).
    let app_cfg = AppGenConfig { apps: 2, stages: (2, 4), ..Default::default() };
    let mk = |s: u64| {
        let apps = random_apps(&app_cfg, s);
        let pf = random_fully_homogeneous(
            &PlatformGenConfig { procs: 4, modes: (1, 1), ..Default::default() },
            s + 4000,
        );
        let tb = minimize_global_period(&apps, &pf, CommModel::Overlap)
            .map(|x| x.objective * 1.5)
            .unwrap_or(1e9);
        (apps, pf, tb)
    };
    let cert = certify(
        SEEDS,
        |s| {
            let (apps, pf, tb) = mk(s);
            min_latency_under_period_fully_hom(&apps, &pf, CommModel::Overlap, &vec![tb; apps.a()])
                .map(|x| x.objective)
        },
        |s| {
            let (apps, pf, tb) = mk(s);
            exact_optimize(
                &apps,
                &pf,
                ExactConfig {
                    kind: MappingKind::Interval,
                    model: CommModel::Overlap,
                    speed: SpeedPolicy::MaxOnly,
                },
                Criterion::Latency,
                &Thresholds::none().with_period(vec![tb; apps.a()]),
            )
            .map(|x| x.objective)
        },
    );
    println!("{}", cert.row("Period/Latency / fully-hom (L min)", "Thm 15/16: DP (L,T)(i,q)"));

    let cert = certify(
        SEEDS,
        |s| {
            let (apps, pf, _) = mk(s);
            min_period_under_latency_fully_hom(
                &apps,
                &pf,
                CommModel::Overlap,
                &vec![1e6; apps.a()],
            )
            .map(|x| x.objective)
        },
        |s| {
            let (apps, pf, _) = mk(s);
            exact_optimize(
                &apps,
                &pf,
                ExactConfig {
                    kind: MappingKind::Interval,
                    model: CommModel::Overlap,
                    speed: SpeedPolicy::MaxOnly,
                },
                Criterion::Period,
                &Thresholds::none().with_latency(vec![1e6; apps.a()]),
            )
            .map(|x| x.objective)
        },
    );
    println!("{}", cert.row("Period/Latency / fully-hom (T min)", "Thm 15/16: binary search dual"));

    // Period/Energy one-to-one (Theorem 19).
    let app_cfg2 = AppGenConfig { apps: 2, stages: (1, 3), ..Default::default() };
    let cert = certify(
        SEEDS,
        |s| {
            let apps = random_apps(&app_cfg2, s);
            let pf = random_comm_homogeneous(
                &PlatformGenConfig { procs: apps.total_stages(), modes: (2, 3), ..Default::default() },
                s + 5000,
            );
            let tb: Vec<f64> = apps.apps.iter().map(|a| a.total_work() / 2.0 + 2.0).collect();
            min_energy_one_to_one_matching(&apps, &pf, CommModel::Overlap, &tb)
                .map(|x| x.objective)
        },
        |s| {
            let apps = random_apps(&app_cfg2, s);
            let pf = random_comm_homogeneous(
                &PlatformGenConfig { procs: apps.total_stages(), modes: (2, 3), ..Default::default() },
                s + 5000,
            );
            let tb: Vec<f64> = apps.apps.iter().map(|a| a.total_work() / 2.0 + 2.0).collect();
            exact_optimize(
                &apps,
                &pf,
                ExactConfig {
                    kind: MappingKind::OneToOne,
                    model: CommModel::Overlap,
                    speed: SpeedPolicy::All,
                },
                Criterion::Energy,
                &Thresholds::none().with_period(tb),
            )
            .map(|x| x.objective)
        },
    );
    println!("{}", cert.row("Period/Energy / one-to-one / com-hom", "Thm 19: Hungarian matching"));

    // Period/Energy interval (Theorems 18/21).
    let cert = certify(
        SEEDS,
        |s| {
            let apps = random_apps(&app_cfg2, s);
            let pf = random_fully_homogeneous(
                &PlatformGenConfig { procs: 4, modes: (2, 3), ..Default::default() },
                s + 6000,
            );
            let tb: Vec<f64> = apps.apps.iter().map(|a| a.total_work() / 3.0 + 2.0).collect();
            min_energy_interval_fully_hom(&apps, &pf, CommModel::Overlap, &tb).map(|x| x.objective)
        },
        |s| {
            let apps = random_apps(&app_cfg2, s);
            let pf = random_fully_homogeneous(
                &PlatformGenConfig { procs: 4, modes: (2, 3), ..Default::default() },
                s + 6000,
            );
            let tb: Vec<f64> = apps.apps.iter().map(|a| a.total_work() / 3.0 + 2.0).collect();
            exact_optimize(
                &apps,
                &pf,
                ExactConfig {
                    kind: MappingKind::Interval,
                    model: CommModel::Overlap,
                    speed: SpeedPolicy::All,
                },
                Criterion::Energy,
                &Thresholds::none().with_period(tb),
            )
            .map(|x| x.objective)
        },
    );
    println!("{}", cert.row("Period/Energy / interval / fully-hom", "Thm 18/21: DP + convolution"));

    // Tri-criteria uni-modal (Theorem 24).
    let cert = certify(
        SEEDS,
        |s| {
            let apps = random_apps(&app_cfg2, s);
            let pf = random_fully_homogeneous(
                &PlatformGenConfig { procs: 4, modes: (1, 1), ..Default::default() },
                s + 7000,
            );
            let e_per = EnergyModel::default().dynamic(pf.procs[0].max_speed());
            let tb: Vec<f64> = apps.apps.iter().map(|a| a.total_work() + 5.0).collect();
            min_latency_tri_unimodal(&apps, &pf, CommModel::Overlap, &tb, 3.0 * e_per + 1e-6)
                .map(|x| x.objective)
        },
        |s| {
            let apps = random_apps(&app_cfg2, s);
            let pf = random_fully_homogeneous(
                &PlatformGenConfig { procs: 4, modes: (1, 1), ..Default::default() },
                s + 7000,
            );
            let e_per = EnergyModel::default().dynamic(pf.procs[0].max_speed());
            let tb: Vec<f64> = apps.apps.iter().map(|a| a.total_work() + 5.0).collect();
            exact_optimize(
                &apps,
                &pf,
                ExactConfig {
                    kind: MappingKind::Interval,
                    model: CommModel::Overlap,
                    speed: SpeedPolicy::All,
                },
                Criterion::Latency,
                &Thresholds::none().with_period(tb).with_energy(3.0 * e_per + 1e-6),
            )
            .map(|x| x.objective)
        },
    );
    println!("{}", cert.row("Tri-criteria / uni-modal / fully-hom", "Thm 24: Algorithm 2 + DP"));
    println!("| Tri-criteria / multi-modal | NP-hard (Thm 26/27) | see `gadgets` | ok |");

    // Heuristic quality vs exact branch-and-bound on the Section 2 example
    // family.
    let (apps, pf) = section2_example();
    let mut exact_sum = 0.0;
    let mut greedy_sum = 0.0;
    let mut ls_sum = 0.0;
    let mut cases = 0;
    for tb in [1.5, 2.0, 3.0, 4.0, 6.0] {
        let bounds = [tb, tb];
        let lat = [f64::INFINITY, f64::INFINITY];
        if let (Some(ex), Some(ls)) = (
            cpo_core::tri::multimodal::branch_and_bound_tri(
                &apps,
                &pf,
                CommModel::Overlap,
                MappingKind::Interval,
                &bounds,
                &lat,
            ),
            local_search(
                &apps,
                &pf,
                CommModel::Overlap,
                &bounds,
                &lat,
                &LocalSearchConfig { iterations: 4000, seed: 11, ..Default::default() },
            ),
        ) {
            let start = ex.mapping.clone().at_max_speed(&pf);
            let greedy = cpo_core::heuristics::greedy_energy_downscale(
                &apps,
                &pf,
                CommModel::Overlap,
                &bounds,
                &lat,
                &start,
            )
            .expect("feasible start");
            exact_sum += ex.objective;
            greedy_sum += greedy.objective;
            ls_sum += ls.objective;
            cases += 1;
        }
    }
    println!(
        "| Heuristics vs exact (Section 2 family, {} bounds) | greedy downscale / local search | mean ratio {:.3} / {:.3} | {} |",
        cases,
        greedy_sum / exact_sum,
        ls_sum / exact_sum,
        status(ls_sum / exact_sum < 1.25)
    );
}

// ---------------------------------------------------------------------------
// gadgets
// ---------------------------------------------------------------------------

fn gadgets() {
    println!("\n## GADGETS — NP-hardness reductions, run both ways\n");
    println!("| reduction | instances | fidelity | status |");
    println!("|---|---|---|---|");

    // Theorem 5 intended-mapping check on factory instances.
    let mut ok5 = 0;
    const N5: u64 = 20;
    for seed in 0..N5 {
        let inst = ThreePartition::yes_instance(3, seed);
        let g = theorem5_encode(&inst);
        let triples = inst.solve().expect("yes");
        let m = theorem5_mapping(&inst, &triples);
        let t = Evaluator::new(&g.apps, &g.platform).period(&m, CommModel::Overlap);
        if close(t, 1.0) {
            ok5 += 1;
        }
    }
    println!(
        "| Thm 5 (3-PARTITION → period/interval) | {N5} YES | {ok5}/{N5} reach period 1 | {} |",
        status(ok5 == N5 as usize)
    );

    // Theorem 9.
    let mut ok9 = 0;
    for seed in 0..N5 {
        let inst = ThreePartition::yes_instance(3, seed + 100);
        let g = theorem9_encode(&inst);
        let m = theorem9_mapping(&inst.solve().expect("yes"));
        let l = Evaluator::new(&g.apps, &g.platform).latency(&m);
        if close(l, g.target_latency) {
            ok9 += 1;
        }
    }
    println!(
        "| Thm 9 (3-PARTITION → latency/one-to-one) | {N5} YES | {ok9}/{N5} reach latency B | {} |",
        status(ok9 == N5 as usize)
    );

    // Theorem 26 fidelity on mixed YES/NO.
    let mut agree = 0;
    const N26: u64 = 12;
    for seed in 0..N26 {
        let inst = if seed % 2 == 0 {
            TwoPartition::yes_instance(3, seed)
        } else {
            TwoPartition::no_instance(3, seed)
        };
        let expected = inst.solve().is_some();
        let g = theorem26_encode(&inst);
        let got = tri_feasible(
            &g.apps,
            &g.platform,
            CommModel::Overlap,
            MappingKind::OneToOne,
            &[g.target_period],
            &[g.target_latency],
            g.target_energy,
        );
        if got == expected {
            agree += 1;
        }
    }
    println!(
        "| Thm 26 (2-PARTITION → tri-criteria) | {N26} mixed | {agree}/{N26} feasibility agrees | {} |",
        status(agree == N26 as usize)
    );

    // Theorem 27 (interval variant).
    let mut agree27 = 0;
    const N27: u64 = 6;
    for seed in 0..N27 {
        let inst = if seed % 2 == 0 {
            TwoPartition::yes_instance(2, seed)
        } else {
            TwoPartition::no_instance(2, seed)
        };
        let expected = inst.solve().is_some();
        let g = theorem27_encode(&inst);
        let got = tri_feasible(
            &g.apps,
            &g.platform,
            CommModel::Overlap,
            MappingKind::Interval,
            &[g.target_period],
            &[g.target_latency],
            g.target_energy,
        );
        if got == expected {
            agree27 += 1;
        }
    }
    println!(
        "| Thm 27 (2-PARTITION → tri-criteria, interval) | {N27} mixed | {agree27}/{N27} agree | {} |",
        status(agree27 == N27 as usize)
    );

    // Exact-solver blow-up on Theorem 26 gadgets: nodes visited vs n.
    println!("\n### Branch-and-bound blow-up on Theorem 26 gadgets (NP-hardness signature)\n");
    println!("| items n | search nodes | time |");
    println!("|---|---|---|");
    for n in 2..=5 {
        let inst = TwoPartition::yes_instance(n, 1);
        let g = theorem26_encode(&inst);
        let t0 = Instant::now();
        let (_, nodes) = branch_and_bound_tri_counted(
            &g.apps,
            &g.platform,
            CommModel::Overlap,
            MappingKind::OneToOne,
            &[g.target_period],
            &[g.target_latency],
        );
        println!("| {n} | {nodes} | {:?} |", t0.elapsed());
    }
}

// ---------------------------------------------------------------------------
// scaling
// ---------------------------------------------------------------------------

fn time_it(mut f: impl FnMut()) -> f64 {
    // Warm up once, then take the best of 3 runs.
    f();
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

fn scaling() {
    println!("\n## SCALING — runtime of the polynomial algorithms\n");
    println!("(growth = t(size)/t(previous size); the claimed bounds predict");
    println!("about 4-8x per doubling for the quadratic/cubic algorithms)\n");

    println!("### Theorem 1 (period, one-to-one, com-hom) — O((n·A·p)² log(n·A·p))\n");
    println!("| N stages (= p) | time (ms) | growth |");
    println!("|---|---|---|");
    let mut prev = f64::NAN;
    for n in [20usize, 40, 80, 160] {
        let apps = random_apps(
            &AppGenConfig { apps: 4, stages: (n / 4, n / 4), ..Default::default() },
            7,
        );
        let pf = random_comm_homogeneous(
            &PlatformGenConfig { procs: n, modes: (1, 3), ..Default::default() },
            8,
        );
        let t = time_it(|| {
            let _ = min_period_one_to_one_comm_hom(&apps, &pf, CommModel::Overlap);
        });
        println!("| {n} | {:.2} | {:.1}x |", t * 1e3, t / prev);
        prev = t;
    }

    println!("\n### Theorem 3 (period, interval, fully-hom) — O(n³p²) worst case\n");
    println!("| n per app (A=4, p=16) | time (ms) | growth |");
    println!("|---|---|---|");
    prev = f64::NAN;
    for n in [8usize, 16, 32, 64] {
        let apps = random_apps(
            &AppGenConfig { apps: 4, stages: (n, n), ..Default::default() },
            9,
        );
        let pf = random_fully_homogeneous(
            &PlatformGenConfig { procs: 16, modes: (1, 2), ..Default::default() },
            10,
        );
        let t = time_it(|| {
            let _ = minimize_global_period(&apps, &pf, CommModel::Overlap);
        });
        println!("| {n} | {:.2} | {:.1}x |", t * 1e3, t / prev);
        prev = t;
    }

    println!("\n### Theorem 18/21 (energy DP) — O(A·n³·p²)\n");
    println!("| n per app (A=2, p=8) | time (ms) | growth |");
    println!("|---|---|---|");
    prev = f64::NAN;
    for n in [8usize, 16, 32, 64] {
        let apps = random_apps(
            &AppGenConfig { apps: 2, stages: (n, n), ..Default::default() },
            11,
        );
        let pf = random_fully_homogeneous(
            &PlatformGenConfig { procs: 8, modes: (3, 3), ..Default::default() },
            12,
        );
        let tb: Vec<f64> = apps.apps.iter().map(|a| a.total_work() / 4.0 + 2.0).collect();
        let t = time_it(|| {
            let _ = min_energy_interval_fully_hom(&apps, &pf, CommModel::Overlap, &tb);
        });
        println!("| {n} | {:.2} | {:.1}x |", t * 1e3, t / prev);
        prev = t;
    }

    println!("\n### Theorem 19 (energy matching) — Hungarian-dominated\n");
    println!("| N stages (= p) | time (ms) | growth |");
    println!("|---|---|---|");
    prev = f64::NAN;
    for n in [16usize, 32, 64, 128] {
        let apps = random_apps(
            &AppGenConfig { apps: 4, stages: (n / 4, n / 4), ..Default::default() },
            13,
        );
        let pf = random_comm_homogeneous(
            &PlatformGenConfig { procs: n, modes: (2, 3), ..Default::default() },
            14,
        );
        let tb: Vec<f64> = apps.apps.iter().map(|a| a.total_work() / 2.0 + 4.0).collect();
        let t = time_it(|| {
            let _ = min_energy_one_to_one_matching(&apps, &pf, CommModel::Overlap, &tb);
        });
        println!("| {n} | {:.2} | {:.1}x |", t * 1e3, t / prev);
        prev = t;
    }
}

// ---------------------------------------------------------------------------
// extensions: replication / sharing / buffers ablations
// ---------------------------------------------------------------------------

fn extensions() {
    println!("\n## EXTENSIONS — Section 6 future work, implemented and measured\n");

    // Replication vs plain intervals on a monolithic-stage-heavy workload.
    println!("### Replication (paper ref [4]): period with p processors\n");
    println!("| p | plain interval period | replicated period | gain |");
    println!("|---|---|---|---|");
    let apps = AppSet::new(vec![
        cpo_model::application::Application::from_pairs(0.0, &[(8.0, 1.0)]),
        cpo_model::application::Application::from_pairs(0.0, &[(4.0, 1.0), (4.0, 1.0)]),
    ])
    .unwrap();
    for p in [2usize, 3, 4, 6, 8] {
        let pf = Platform::fully_homogeneous(p, vec![2.0], 4.0).unwrap();
        let plain = minimize_global_period(&apps, &pf, CommModel::Overlap).map(|s| s.objective);
        let repl = cpo_core::replication::minimize_global_period_replicated(
            &apps,
            &pf,
            CommModel::Overlap,
        )
        .map(|(_, t)| t);
        match (plain, repl) {
            (Some(tp), Some(tr)) => println!(
                "| {p} | {tp:.3} | {tr:.3} | {:.2}x |",
                tp / tr
            ),
            _ => println!("| {p} | infeasible | — | — |"),
        }
    }

    // Replication as an alternative to DVFS for energy.
    println!("\n### Replication vs DVFS: energy under a period bound (work-8 stage)\n");
    println!("| period <= | DVFS-only energy | replication+DVFS energy | replicas |");
    println!("|---|---|---|---|");
    let one = AppSet::single(cpo_model::application::Application::from_pairs(0.0, &[(8.0, 0.0)]));
    let pf = Platform::fully_homogeneous(8, vec![1.0, 2.0, 4.0, 8.0], 1.0).unwrap();
    for tb in [8.0, 4.0, 2.0, 1.0] {
        let dvfs =
            min_energy_interval_fully_hom(&one, &pf, CommModel::Overlap, &[tb]).map(|s| s.objective);
        let repl = cpo_core::replication::min_energy_replicated_under_period(
            &one,
            &pf,
            CommModel::Overlap,
            &[tb],
        );
        match (dvfs, repl) {
            (Some(ed), Some((m, er))) => println!(
                "| {tb} | {ed:.1} | {er:.1} | {} |",
                m.assignments[0].r()
            ),
            (None, Some((m, er))) => println!("| {tb} | infeasible | {er:.1} | {} |", m.assignments[0].r()),
            _ => println!("| {tb} | infeasible | infeasible | — |"),
        }
    }

    // Sharing gain on random scarce-processor instances.
    println!("\n### Processor sharing: interval vs general optimal period (p = 2, A = 2)\n");
    println!("| seeds | sharing strictly helps | mean gain when it helps |");
    println!("|---|---|---|");
    let cfg = AppGenConfig { apps: 2, stages: (1, 3), ..Default::default() };
    let mut helps = 0;
    let mut gain_sum = 0.0;
    const NS: u64 = 40;
    for seed in 0..NS {
        let apps = random_apps(&cfg, seed);
        let pf = Platform::fully_homogeneous(2, vec![2.0], 1.0).unwrap();
        if let Some((ti, tg)) = cpo_core::sharing::sharing_gain(&apps, &pf, CommModel::Overlap) {
            if tg < ti - 1e-9 {
                helps += 1;
                if ti.is_finite() {
                    gain_sum += ti / tg;
                }
            }
        }
    }
    println!(
        "| {NS} | {helps} | {} |",
        if helps > 0 && gain_sum > 0.0 { format!("{:.2}x", gain_sum / helps as f64) } else { "(feasibility rescues only)".into() }
    );

    // Bounded buffers.
    println!("\n### Bounded buffers: measured period vs capacity (receive-bound chain)\n");
    println!("| capacity | measured period | vs paper model |");
    println!("|---|---|---|");
    let app = cpo_model::application::Application::from_pairs(0.0, &[(1.0, 4.0), (4.0, 0.0)]);
    let bapps = AppSet::single(app);
    let bpf = Platform::fully_homogeneous(2, vec![1.0], 1.0).unwrap();
    let mapping = cpo_model::mapping::Mapping::new()
        .with(cpo_model::mapping::Interval::new(0, 0, 0), 0, 0)
        .with(cpo_model::mapping::Interval::new(0, 1, 1), 1, 0);
    let ideal =
        cpo_simulator::simulate(&bapps, &bpf, &mapping, CommModel::Overlap, 64).period;
    for cap in [1usize, 2, 4, 8] {
        let t = cpo_simulator::simulate_with_buffers(
            &bapps,
            &bpf,
            &mapping,
            CommModel::Overlap,
            64,
            cap,
        )
        .period;
        println!("| {cap} | {t:.3} | {:.2}x |", t / ideal);
    }
    println!("| unbounded (paper) | {ideal:.3} | 1.00x |");
}

// ---------------------------------------------------------------------------
// robustness
// ---------------------------------------------------------------------------

fn robustness() {
    println!("\n## ROBUSTNESS — optimal mappings under execution noise\n");
    println!("Multiplicative noise U(1-eps, 1+eps) on every operation; 32 trials,");
    println!("64 data sets; mapping = the Section 2 period-optimal mapping.\n");
    println!("| eps | mean period | worst period | degradation |");
    println!("|---|---|---|---|");
    let (apps, pf) = section2_example();
    let mapping = cpo_model::mapping::Mapping::new()
        .with(cpo_model::mapping::Interval::new(0, 0, 2), 2, 1)
        .with(cpo_model::mapping::Interval::new(1, 0, 1), 1, 1)
        .with(cpo_model::mapping::Interval::new(1, 2, 3), 0, 1);
    for eps in [0.0, 0.05, 0.1, 0.2, 0.4] {
        let rep = cpo_simulator::jitter_analysis(
            &apps,
            &pf,
            &mapping,
            CommModel::Overlap,
            64,
            eps,
            32,
            11,
        );
        println!(
            "| {eps} | {:.3} | {:.3} | {:+.1}% |",
            rep.mean_period,
            rep.max_period,
            100.0 * rep.degradation()
        );
    }
    println!("\nReading: the period-1 mapping has zero slack (all three cycle-times");
    println!("equal 1), so any noise converts directly into period degradation —");
    println!("the deterministic optimum is a fragile optimum.");
}

// ---------------------------------------------------------------------------
// pareto
// ---------------------------------------------------------------------------

fn pareto() {
    println!("\n## PARETO — period/energy trade-off staircases\n");
    let (apps, _) = section2_example();
    let pf = Platform::fully_homogeneous(3, vec![1.0, 3.0, 6.0, 8.0], 1.0).unwrap();
    println!("### Homogenized Section 2 platform (3 procs, modes {{1,3,6,8}})\n");
    println!("| period <= | min energy | processors |");
    println!("|---|---|---|");
    for pt in cpo_core::pareto::period_energy_front(&apps, &pf, CommModel::Overlap, MappingKind::Interval)
    {
        println!("| {:.3} | {:.1} | {} |", pt.period, pt.energy, pt.solution.mapping.enrolled());
    }

    let video = AppSet::single(video_encoding_app(1.0));
    let farm = Platform::fully_homogeneous(6, vec![0.5, 1.0, 2.0, 4.0], 4.0).unwrap();
    println!("\n### Video encoding chain on a 6-processor DVFS farm\n");
    println!("| period <= | min energy | processors |");
    println!("|---|---|---|");
    for pt in
        cpo_core::pareto::period_energy_front(&video, &farm, CommModel::Overlap, MappingKind::Interval)
    {
        println!("| {:.3} | {:.2} | {} |", pt.period, pt.energy, pt.solution.mapping.enrolled());
    }
}

// ---------------------------------------------------------------------------
// dump: archive the Section 2 instance as JSON
// ---------------------------------------------------------------------------

fn dump() {
    let (apps, platform) = section2_example();
    let period_optimal = cpo_model::mapping::Mapping::new()
        .with(cpo_model::mapping::Interval::new(0, 0, 2), 2, 1)
        .with(cpo_model::mapping::Interval::new(1, 0, 1), 1, 1)
        .with(cpo_model::mapping::Interval::new(1, 2, 3), 0, 1);
    let compromise = cpo_model::mapping::Mapping::new()
        .with(cpo_model::mapping::Interval::new(0, 0, 2), 0, 0)
        .with(cpo_model::mapping::Interval::new(1, 0, 0), 2, 0)
        .with(cpo_model::mapping::Interval::new(1, 1, 3), 1, 0);
    let inst = cpo_model::io::Instance::new(
        "Section 2 / Figure 1 motivating example of Benoit, Renaud-Goud, Robert (IPDPS 2010)",
        apps,
        platform,
    )
    .with_thresholds(Thresholds::uniform_period(2.0, 2))
    .with_mapping("period-optimal", period_optimal)
    .with_mapping("energy-compromise", compromise);
    let json = inst.to_json().expect("serializable");
    // Round-trip check before emitting.
    let back = cpo_model::io::Instance::from_json(&json).expect("round-trips");
    assert_eq!(inst, back);
    println!("{json}");
}

// ---------------------------------------------------------------------------
// solve / batch: the typed front door (ProblemSpec → router → engine)
// ---------------------------------------------------------------------------

fn engine_config(threads: Option<usize>) -> cpo_engine::EngineConfig {
    match threads {
        Some(n) => cpo_engine::EngineConfig::with_threads(n),
        None => cpo_engine::EngineConfig::default(),
    }
}

fn cmd_solve(path: &str, check: bool, threads: Option<usize>, datasets: usize) {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read `{path}`: {e}");
        std::process::exit(2);
    });
    let req = SolveRequest::from_json(&text).unwrap_or_else(|e| {
        eprintln!("cannot parse `{path}`: {e}");
        std::process::exit(2);
    });
    let cfg = engine_config(threads);
    let engine = cpo_engine::Engine::new(cfg.clone());
    let out = maybe_corrupt(engine.solve(&req.apps, &req.platform, &req.problem));
    println!("{}", out.to_json().unwrap_or_else(|_| unrepresentable(&out)));
    export_on_panic(&out, None, bundle_source(&req, &text), &cfg, datasets);
    if check {
        match check_outcome(&req, &out, datasets) {
            Ok(()) => eprintln!("check: ok ({})", out.kind()),
            Err(e) => {
                eprintln!("check: MISMATCH: {e}");
                export_on_mismatch(&e, None, bundle_source(&req, &text), &cfg, datasets);
                std::process::exit(1);
            }
        }
    }
}

/// The stand-in JSON line for an outcome the writer refuses (non-finite
/// values): still one typed outcome per input line, never a crash.
fn unrepresentable(out: &SolveOutcome) -> String {
    SolveOutcome::Unsupported {
        reason: format!("{} outcome not JSON-representable (non-finite values)", out.kind()),
    }
    .to_json_compact()
    .expect("plain string reason serializes")
}

/// The bundle source for a request read from disk: the typed request when
/// it can re-serialize, otherwise the original text verbatim (a poisoned
/// instance with infinite values parses but will not re-serialize).
fn bundle_source(req: &SolveRequest, raw: &str) -> BundleSource {
    if req.to_json_compact().is_ok() {
        BundleSource::Request(req.clone())
    } else {
        BundleSource::RawSpec(raw.trim().to_string())
    }
}

/// If the outcome is a structured engine-panic backstop, freeze the
/// request into a repro bundle (unconditionally — a panic is always worth
/// keeping, `--check` or not).
fn export_on_panic(
    out: &SolveOutcome,
    item: Option<usize>,
    source: BundleSource,
    cfg: &cpo_engine::EngineConfig,
    datasets: usize,
) {
    if let SolveOutcome::Unsupported { reason } = out {
        if let Some(details) = cpo_engine::panic_details(reason) {
            match trust::export_bundle(
                FailureKind::EnginePanic,
                format!("engine panic: {}", details.payload),
                item.or(details.item_index),
                source,
                cfg,
                datasets,
            ) {
                Ok(path) => eprintln!("repro bundle written: {}", path.display()),
                Err(e) => eprintln!("could not write repro bundle: {e}"),
            }
        }
    }
}

/// Freeze a `--check` mismatch into a repro bundle.
fn export_on_mismatch(
    message: &str,
    item: Option<usize>,
    source: BundleSource,
    cfg: &cpo_engine::EngineConfig,
    datasets: usize,
) {
    match trust::export_bundle(FailureKind::CheckMismatch, message.to_string(), item, source, cfg, datasets)
    {
        Ok(path) => eprintln!("repro bundle written: {}", path.display()),
        Err(e) => eprintln!("could not write repro bundle: {e}"),
    }
}

fn cmd_batch(path: &str, check: bool, threads: Option<usize>, datasets: usize) {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read `{path}`: {e}");
        std::process::exit(2);
    });
    // A malformed line becomes that line's unsupported outcome — it never
    // aborts the rest of the batch.
    let lines: Vec<&str> = text.lines().filter(|l| !l.trim().is_empty()).collect();
    let parsed: Vec<Result<SolveRequest, String>> = lines
        .iter()
        .map(|l| SolveRequest::from_json(l).map_err(|e| format!("unparseable request: {e}")))
        .collect();
    let requests: Vec<&SolveRequest> = parsed.iter().filter_map(|r| r.as_ref().ok()).collect();
    let items: Vec<cpo_engine::BatchItem<'_>> = requests
        .iter()
        .map(|r| cpo_engine::BatchItem::new(&r.apps, &r.platform, &r.problem))
        .collect();
    let cfg = engine_config(threads);
    let engine = cpo_engine::Engine::new(cfg.clone());
    let solved = engine.solve_batch_with(&items, |i, out| {
        eprintln!("[{}/{}] {}", i + 1, items.len(), out.kind());
    });
    // Stitch solver outcomes back into input order around the parse
    // failures.
    let mut solved_iter = solved.into_iter();
    let outcomes: Vec<SolveOutcome> = parsed
        .iter()
        .map(|r| match r {
            Ok(_) => maybe_corrupt(solved_iter.next().expect("one outcome per request")),
            Err(reason) => SolveOutcome::Unsupported { reason: reason.clone() },
        })
        .collect();
    let mut mismatches = 0usize;
    for (i, out) in outcomes.iter().enumerate() {
        println!("{}", out.to_json_compact().unwrap_or_else(|_| unrepresentable(out)));
        if let Ok(req) = &parsed[i] {
            export_on_panic(out, Some(i), bundle_source(req, lines[i]), &cfg, datasets);
            if check {
                if let Err(e) = check_outcome(req, out, datasets) {
                    eprintln!("check: item {i} MISMATCH: {e}");
                    export_on_mismatch(&e, Some(i), bundle_source(req, lines[i]), &cfg, datasets);
                    mismatches += 1;
                }
            }
        }
    }
    if check {
        let stats = engine.cache_stats();
        eprintln!(
            "check: {} items, {mismatches} mismatches (cache: {} hits / {} misses)",
            outcomes.len(),
            stats.hits,
            stats.misses
        );
        if mismatches > 0 {
            std::process::exit(1);
        }
    }
}

fn cmd_replay(path: &str) {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read `{path}`: {e}");
        std::process::exit(2);
    });
    let bundle = ReproBundle::from_json(&text).unwrap_or_else(|e| {
        eprintln!("cannot parse bundle `{path}`: {e}");
        std::process::exit(2);
    });
    eprintln!(
        "replaying bundle {} ({:?}: {})",
        bundle.bundle_id, bundle.failure.kind, bundle.failure.message
    );
    match trust::replay(&bundle) {
        Ok(report) => {
            for line in &report.details {
                eprintln!("  {line}");
            }
            for d in &report.divergences {
                eprintln!("  divergence still present: {d}");
            }
            if report.confirmed {
                println!("replay: CONFIRMED — every recorded path reproduced bit-for-bit");
            } else {
                println!("replay: NOT REPRODUCED — recorded observations differ from this run");
                std::process::exit(1);
            }
        }
        Err(e) => {
            eprintln!("replay failed: {e}");
            std::process::exit(2);
        }
    }
}

fn cmd_fuzz(seconds: u64, seed: u64, threads: Option<usize>) {
    let cfg = engine_config(threads);
    eprintln!(
        "fuzz: {seconds}s time box, seed {seed}, bundles under `{}`",
        trust::bundle_dir().display()
    );
    let report = trust::fuzz(seconds, seed, &cfg);
    println!(
        "fuzz: {} instances over {} scenarios ({} full sweeps), {} divergent",
        report.executed,
        report.scenarios,
        report.iterations,
        report.bundles.len()
    );
    for path in &report.bundles {
        eprintln!("  bundle: {}", path.display());
    }
    if !report.bundles.is_empty() {
        std::process::exit(1);
    }
}

/// The committed example request: the Section 2 energy compromise on the
/// homogenized platform, solved through the router.
fn example_request() -> SolveRequest {
    let (apps, _) = section2_example();
    let platform = Platform::fully_homogeneous(3, vec![1.0, 3.0, 6.0, 8.0], 1.0).unwrap();
    let problem = ProblemSpec::new(Objective::Energy, Strategy::Interval, CommModel::Overlap)
        .with_period_bounds(vec![2.0, 2.0]);
    SolveRequest::new(
        "Section 2 energy compromise (energy under period <= 2, homogenized platform)",
        apps,
        platform,
        problem,
    )
}

/// The committed example batch: a mix of feasible, infeasible and
/// unsupported specs over the Section 2 instance, exercising the per-item
/// failure reporting.
fn example_batch() -> Vec<SolveRequest> {
    let (apps, _) = section2_example();
    let platform = Platform::fully_homogeneous(3, vec![1.0, 3.0, 6.0, 8.0], 1.0).unwrap();
    let mut reqs = Vec::new();
    for tb in [1.5, 2.0, 3.0, 6.0] {
        reqs.push(SolveRequest::new(
            format!("energy under period <= {tb}"),
            apps.clone(),
            platform.clone(),
            ProblemSpec::new(Objective::Energy, Strategy::Interval, CommModel::Overlap)
                .with_period_bounds(vec![tb, tb]),
        ));
    }
    reqs.push(SolveRequest::new(
        "minimum period (interval)",
        apps.clone(),
        platform.clone(),
        ProblemSpec::new(Objective::Period, Strategy::Interval, CommModel::Overlap),
    ));
    reqs.push(SolveRequest::new(
        "minimum period with replication",
        apps.clone(),
        platform.clone(),
        ProblemSpec::new(Objective::Period, Strategy::Replicated, CommModel::Overlap),
    ));
    reqs.push(SolveRequest::new(
        "latency under an unachievable period bound (infeasible)",
        apps.clone(),
        platform.clone(),
        ProblemSpec::new(Objective::Latency, Strategy::Interval, CommModel::Overlap)
            .with_period_bounds(vec![0.01, 0.01]),
    ));
    reqs.push(SolveRequest::new(
        "energy for a general mapping (unsupported)",
        apps.clone(),
        platform.clone(),
        ProblemSpec::new(Objective::Energy, Strategy::General, CommModel::Overlap)
            .with_period_bounds(vec![2.0, 2.0]),
    ));
    reqs.push(SolveRequest::new(
        "period/latency front (no-overlap model)",
        apps,
        platform,
        ProblemSpec::new(Objective::PeriodLatencyFront, Strategy::Interval, CommModel::NoOverlap),
    ));
    reqs
}

/// The committed large-scale request: a wide random instance whose
/// `--check` pass exercises the wavefront simulator at "millions of data
/// sets" scale (pair it with `--datasets 1000000` — the DAG engine could
/// not hold that many events in memory, the wavefront streams them).
fn example_large() -> SolveRequest {
    let apps = random_apps(
        &AppGenConfig { apps: 3, stages: (10, 14), ..Default::default() },
        2024,
    );
    let platform = random_fully_homogeneous(
        &PlatformGenConfig { procs: apps.total_stages() + 2, modes: (2, 2), ..Default::default() },
        2025,
    );
    let problem = ProblemSpec::new(Objective::Period, Strategy::Interval, CommModel::Overlap);
    SolveRequest::new(
        "large-scale throughput study: minimum period over a 3-app, ~36-stage instance \
         (check with --datasets 1000000 to soak the wavefront simulator)",
        apps,
        platform,
        problem,
    )
}

/// The committed Benes request: the Section 2 instance solved over a
/// multistage (rearrangeable Benes) interconnect instead of dedicated
/// links. The router wraps the interval period solver in the routing
/// certificate (`Plan::Benes`), and `--check` replays the mapping
/// through the simulator with the fabric contention model.
fn example_benes() -> SolveRequest {
    let (apps, _) = section2_example();
    let procs = vec![Processor::new(vec![1.0, 3.0, 6.0, 8.0]).unwrap(); 3];
    let net = MultistageNetwork::new(1.0, 0.05).unwrap();
    let platform = Platform::multistage(procs, net).unwrap();
    let problem = ProblemSpec::new(Objective::Period, Strategy::Interval, CommModel::Overlap);
    SolveRequest::new(
        "Section 2 instance over a Benes multistage fabric (minimum period, interval mapping)",
        apps,
        platform,
        problem,
    )
}

fn spec_example(which: Option<&str>) {
    match which {
        Some("batch") => {
            for req in example_batch() {
                println!("{}", req.to_json_compact().expect("serializable"));
            }
        }
        Some("large") => {
            let req = example_large();
            let json = req.to_json().expect("serializable");
            assert_eq!(SolveRequest::from_json(&json).expect("round-trips"), req);
            println!("{json}");
        }
        Some("benes") => {
            let req = example_benes();
            let json = req.to_json().expect("serializable");
            assert_eq!(SolveRequest::from_json(&json).expect("round-trips"), req);
            println!("{json}");
        }
        _ => {
            let req = example_request();
            let json = req.to_json().expect("serializable");
            assert_eq!(SolveRequest::from_json(&json).expect("round-trips"), req);
            println!("{json}");
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(String::as_str).unwrap_or("all");
    let check = args.iter().any(|a| a == "--check");
    let threads = args.iter().position(|a| a == "--threads").map(|i| {
        match args.get(i + 1).and_then(|v| v.parse::<usize>().ok()) {
            Some(n) if n > 0 => n,
            _ => {
                eprintln!("--threads needs a positive integer value");
                std::process::exit(2);
            }
        }
    });
    let datasets = match args.iter().position(|a| a == "--datasets") {
        Some(i) => match args.get(i + 1).and_then(|v| v.parse::<usize>().ok()) {
            // A single data set has no inter-completion gap: the measured
            // period would be NaN and every --check would spuriously fail.
            Some(n) if n >= 2 => n,
            _ => {
                eprintln!("--datasets needs an integer value of at least 2");
                std::process::exit(2);
            }
        },
        None => 64,
    };
    let file = args.get(1).filter(|a| !a.starts_with("--")).cloned();
    let u64_flag = |flag: &str, default: u64| -> u64 {
        match args.iter().position(|a| a == flag) {
            Some(i) => match args.get(i + 1).and_then(|v| v.parse::<u64>().ok()) {
                Some(n) => n,
                None => {
                    eprintln!("{flag} needs a non-negative integer value");
                    std::process::exit(2);
                }
            },
            None => default,
        }
    };
    match cmd {
        "fig1" => fig1(),
        "table1" => table1(),
        "table2" => table2(),
        "gadgets" => gadgets(),
        "scaling" => scaling(),
        "pareto" => pareto(),
        "extensions" => extensions(),
        "robustness" => robustness(),
        "dump" => dump(),
        "solve" => match file {
            Some(f) => cmd_solve(&f, check, threads, datasets),
            None => {
                eprintln!(
                    "usage: cpo-experiments solve <spec.json> [--check] [--threads N] \
                     [--datasets N]"
                );
                std::process::exit(2);
            }
        },
        "batch" => match file {
            Some(f) => cmd_batch(&f, check, threads, datasets),
            None => {
                eprintln!(
                    "usage: cpo-experiments batch <specs.jsonl> [--check] [--threads N] \
                     [--datasets N]"
                );
                std::process::exit(2);
            }
        },
        "replay" => match file {
            Some(f) => cmd_replay(&f),
            None => {
                eprintln!("usage: cpo-experiments replay <bundle.json>");
                std::process::exit(2);
            }
        },
        "fuzz" => {
            let seconds = u64_flag("--seconds", 10);
            let seed = u64_flag("--seed", 0xC0FFEE);
            cmd_fuzz(seconds, seed, threads);
        }
        "serve" => {
            let str_flag = |flag: &str| -> Option<String> {
                args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1).cloned())
            };
            let f64_flag = |flag: &str, default: f64| -> f64 {
                match args.iter().position(|a| a == flag) {
                    Some(i) => match args.get(i + 1).and_then(|v| v.parse::<f64>().ok()) {
                        Some(x) if x >= 0.0 => x,
                        _ => {
                            eprintln!("{flag} needs a non-negative number");
                            std::process::exit(2);
                        }
                    },
                    None => default,
                }
            };
            let defaults = serve_cli::ServeCliOptions::default();
            let opts = serve_cli::ServeCliOptions {
                once: args.iter().any(|a| a == "--once"),
                socket: str_flag("--socket"),
                threads,
                queue: u64_flag("--queue", defaults.queue as u64).max(1) as usize,
                rate: f64_flag("--rate", defaults.rate),
                burst: f64_flag("--burst", defaults.burst),
                strikes: u64_flag("--strikes", u64::from(defaults.strikes)).max(1) as u32,
                check,
                datasets,
                stats_secs: u64_flag("--stats-secs", defaults.stats_secs),
                downgrade: args.iter().any(|a| a == "--downgrade"),
                cost_per_ms: u64_flag("--cost-per-ms", defaults.cost_per_ms).max(1),
            };
            std::process::exit(serve_cli::cmd_serve(opts));
        }
        "spec-example" => spec_example(args.get(1).map(String::as_str)),
        "all" => {
            fig1();
            table1();
            table2();
            gadgets();
            scaling();
            pareto();
            extensions();
            robustness();
        }
        other => {
            eprintln!("unknown subcommand `{other}`");
            eprintln!(
                "usage: cpo-experiments [fig1|table1|table2|gadgets|scaling|pareto|extensions|\
                 robustness|dump|all]"
            );
            eprintln!(
                "       cpo-experiments solve <spec.json> [--check] [--threads N] [--datasets N]"
            );
            eprintln!(
                "       cpo-experiments batch <specs.jsonl> [--check] [--threads N] [--datasets N]"
            );
            eprintln!("       cpo-experiments replay <bundle.json>");
            eprintln!("       cpo-experiments fuzz [--seconds N] [--seed S] [--threads N]");
            eprintln!(
                "       cpo-experiments serve [--once] [--socket PATH] [--threads N] \
                 [--queue N] [--rate R] [--burst B] [--strikes K] [--check] [--datasets N] \
                 [--stats-secs S] [--downgrade] [--cost-per-ms U]"
            );
            eprintln!("       cpo-experiments spec-example [batch|large|benes]");
            std::process::exit(2);
        }
    }
}
