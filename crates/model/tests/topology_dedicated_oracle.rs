//! Dedicated-topology conservation: the `CommTopology` refactor must not
//! move a single bit on `Dedicated` platforms.
//!
//! Every oracle in this file is a **verbatim copy of the pre-refactor
//! code** (the `δ / bw_*` divisions that used to live inline in
//! `Evaluator::chain_breakdown`, `GeneralEvaluator::interval_ops` and
//! `ReplicatedEvaluator::{app_period, app_latency}`), kept here frozen
//! while the library routes the same terms through
//! `Platform::transfer_time_*`. The suite soaks random instances, random
//! mappings, all three `Links` variants and both communication models,
//! comparing **by bit pattern** — including `0.0` payloads, whose sign
//! would flip under a careless `+ 0.0`.
//!
//! A second group pins down the conservative multistage limit: a fabric
//! with `hop_latency = 0` prices every edge exactly like uniform
//! dedicated links, bit for bit.

use cpo_model::generator::{
    random_apps, random_comm_homogeneous, random_fully_heterogeneous, random_fully_homogeneous,
    AppGenConfig, PlatformGenConfig,
};
use cpo_model::num::{fmax, fmin};
use cpo_model::prelude::*;
use cpo_model::replication::{ReplicatedEvaluator, ReplicatedMapping};
use cpo_model::sharing::{GeneralEvaluator, GeneralMapping};
use proptest::prelude::*;
use rand::prelude::*;
use rand::rngs::StdRng;

// ---------------------------------------------------------------------------
// Verbatim pre-refactor oracles
// ---------------------------------------------------------------------------

/// Pre-refactor `Evaluator::chain_breakdown` comm terms: bandwidth lookup
/// first, one division per edge.
fn oracle_chain_breakdown(
    apps: &AppSet,
    platform: &Platform,
    mapping: &Mapping,
    app: usize,
) -> Vec<(f64, f64, f64)> {
    let chain = mapping.app_chain(app);
    let application = &apps.apps[app];
    let m = chain.len();
    let mut out = Vec::with_capacity(m);
    for (j, asg) in chain.iter().enumerate() {
        let speed = platform.procs[asg.proc].speed(asg.mode);
        let din = application.input_of(asg.interval.first);
        let dout = application.output_of(asg.interval.last);
        let bw_in = if j == 0 {
            platform.bw_input(app, asg.proc)
        } else {
            platform.bw_inter(app, chain[j - 1].proc, asg.proc)
        };
        let bw_out = if j == m - 1 {
            platform.bw_output(app, asg.proc)
        } else {
            platform.bw_inter(app, asg.proc, chain[j + 1].proc)
        };
        out.push((
            din / bw_in,
            application.interval_work(asg.interval.first, asg.interval.last) / speed,
            dout / bw_out,
        ));
    }
    out
}

/// Pre-refactor `GeneralEvaluator::interval_ops`.
fn oracle_interval_ops(
    apps: &AppSet,
    platform: &Platform,
    mapping: &GeneralMapping,
    asg: &cpo_model::sharing::SharedAssignment,
) -> (f64, f64, f64) {
    let a = asg.interval.app;
    let app = &apps.apps[a];
    let chain = mapping.app_chain(a);
    let j = chain
        .iter()
        .position(|x| x.interval == asg.interval)
        .expect("assignment belongs to the chain");
    let speed = platform.procs[asg.proc].speed(asg.mode);
    let bw_in = if j == 0 {
        platform.bw_input(a, asg.proc)
    } else {
        let prev = chain[j - 1];
        if prev.proc == asg.proc {
            f64::INFINITY // same processor: no communication
        } else {
            platform.bw_inter(a, prev.proc, asg.proc)
        }
    };
    let bw_out = if j == chain.len() - 1 {
        platform.bw_output(a, asg.proc)
    } else {
        let next = chain[j + 1];
        if next.proc == asg.proc {
            f64::INFINITY
        } else {
            platform.bw_inter(a, asg.proc, next.proc)
        }
    };
    (
        app.input_of(asg.interval.first) / bw_in,
        app.interval_work(asg.interval.first, asg.interval.last) / speed,
        app.output_of(asg.interval.last) / bw_out,
    )
}

/// Pre-refactor `GeneralEvaluator::proc_cycle` (unchanged aggregation over
/// the oracle ops).
fn oracle_proc_cycle(
    apps: &AppSet,
    platform: &Platform,
    mapping: &GeneralMapping,
    u: usize,
    model: CommModel,
) -> f64 {
    let mut sum_in = 0.0;
    let mut sum_comp = 0.0;
    let mut sum_out = 0.0;
    for asg in mapping.assignments.iter().filter(|x| x.proc == u) {
        let (i, c, o) = oracle_interval_ops(apps, platform, mapping, asg);
        sum_in += i;
        sum_comp += c;
        sum_out += o;
    }
    model.combine(sum_in, sum_comp, sum_out)
}

fn oracle_min_speed(platform: &Platform, asg: &cpo_model::replication::ReplicatedAssignment) -> f64 {
    asg.procs
        .iter()
        .zip(&asg.modes)
        .map(|(&u, &m)| platform.procs[u].speed(m))
        .fold(f64::INFINITY, fmin)
}

fn oracle_min_bw(
    platform: &Platform,
    app: usize,
    from: &cpo_model::replication::ReplicatedAssignment,
    to: &cpo_model::replication::ReplicatedAssignment,
) -> f64 {
    let mut b = f64::INFINITY;
    for &u in &from.procs {
        for &v in &to.procs {
            b = fmin(b, platform.bw_inter(app, u, v));
        }
    }
    b
}

/// Pre-refactor `ReplicatedEvaluator::app_period`.
fn oracle_replicated_period(
    apps: &AppSet,
    platform: &Platform,
    mapping: &ReplicatedMapping,
    app: usize,
    model: CommModel,
) -> f64 {
    let chain = mapping.app_chain(app);
    let application = &apps.apps[app];
    let m = chain.len();
    let mut period = 0.0f64;
    for (j, asg) in chain.iter().enumerate() {
        let s = oracle_min_speed(platform, asg);
        let bw_in = if j == 0 {
            asg.procs.iter().map(|&u| platform.bw_input(app, u)).fold(f64::INFINITY, fmin)
        } else {
            oracle_min_bw(platform, app, chain[j - 1], asg)
        };
        let bw_out = if j == m - 1 {
            asg.procs.iter().map(|&u| platform.bw_output(app, u)).fold(f64::INFINITY, fmin)
        } else {
            oracle_min_bw(platform, app, asg, chain[j + 1])
        };
        let incoming = application.input_of(asg.interval.first) / bw_in;
        let compute = application.interval_work(asg.interval.first, asg.interval.last) / s;
        let outgoing = application.output_of(asg.interval.last) / bw_out;
        let cycle = model.combine(incoming, compute, outgoing) / asg.r() as f64;
        period = fmax(period, cycle);
    }
    period
}

/// Pre-refactor `ReplicatedEvaluator::app_latency`.
fn oracle_replicated_latency(
    apps: &AppSet,
    platform: &Platform,
    mapping: &ReplicatedMapping,
    app: usize,
) -> f64 {
    let chain = mapping.app_chain(app);
    let application = &apps.apps[app];
    let m = chain.len();
    let mut latency = 0.0;
    for (j, asg) in chain.iter().enumerate() {
        let s = oracle_min_speed(platform, asg);
        if j == 0 {
            let bw_in =
                asg.procs.iter().map(|&u| platform.bw_input(app, u)).fold(f64::INFINITY, fmin);
            latency += application.input_of(0) / bw_in;
        }
        latency += application.interval_work(asg.interval.first, asg.interval.last) / s;
        let bw_out = if j == m - 1 {
            asg.procs.iter().map(|&u| platform.bw_output(app, u)).fold(f64::INFINITY, fmin)
        } else {
            oracle_min_bw(platform, app, asg, chain[j + 1])
        };
        latency += application.output_of(asg.interval.last) / bw_out;
    }
    latency
}

// ---------------------------------------------------------------------------
// Instance / mapping generation
// ---------------------------------------------------------------------------

/// Random valid interval mapping (same shape as the tier-1 suite's).
fn random_mapping(apps: &AppSet, platform: &Platform, rng: &mut StdRng) -> Option<Mapping> {
    let mut procs: Vec<usize> = (0..platform.p()).collect();
    procs.shuffle(rng);
    let mut mapping = Mapping::new();
    let mut next = 0usize;
    for (a, app) in apps.apps.iter().enumerate() {
        let mut first = 0usize;
        while first < app.n() {
            let last = rng.gen_range(first..app.n());
            if next >= procs.len() {
                return None;
            }
            let u = procs[next];
            next += 1;
            let mode = rng.gen_range(0..platform.procs[u].modes());
            mapping.push(Interval::new(a, first, last), u, mode);
            first = last + 1;
        }
    }
    Some(mapping)
}

/// Replicated variant: each interval of a plain mapping gets 1–3 replicas.
fn random_replicated(
    apps: &AppSet,
    platform: &Platform,
    rng: &mut StdRng,
) -> Option<ReplicatedMapping> {
    let plain = random_mapping(apps, platform, rng)?;
    let used: Vec<usize> = plain.assignments.iter().map(|a| a.proc).collect();
    let free: Vec<usize> = (0..platform.p()).filter(|u| !used.contains(u)).collect();
    let mut pool = free.into_iter();
    let mut out = ReplicatedMapping::new();
    for asg in &plain.assignments {
        let mut procs = vec![asg.proc];
        let mut modes = vec![asg.mode];
        for _ in 0..rng.gen_range(0..3) {
            if let Some(u) = pool.next() {
                procs.push(u);
                modes.push(rng.gen_range(0..platform.procs[u].modes()));
            }
        }
        out.push(asg.interval, procs, modes);
    }
    Some(out)
}

/// General variant: a plain mapping re-dealt onto few processors so some
/// host several intervals (possibly of different applications).
fn random_general(apps: &AppSet, platform: &Platform, rng: &mut StdRng) -> GeneralMapping {
    let k = rng.gen_range(1..=platform.p());
    let mut out = GeneralMapping::new();
    for (a, app) in apps.apps.iter().enumerate() {
        let mut first = 0usize;
        while first < app.n() {
            let last = rng.gen_range(first..app.n());
            let u = rng.gen_range(0..k);
            let mode = rng.gen_range(0..platform.procs[u].modes());
            out.push(Interval::new(a, first, last), u, mode);
            first = last + 1;
        }
    }
    out
}

/// The three dedicated link shapes over one random processor set.
fn dedicated_platforms(apps: &AppSet, seed: u64) -> Vec<Platform> {
    let uniform = random_fully_homogeneous(
        &PlatformGenConfig { procs: apps.total_stages() + 2, modes: (1, 3), ..Default::default() },
        seed,
    );
    let comm_hom = random_comm_homogeneous(
        &PlatformGenConfig { procs: apps.total_stages() + 2, modes: (2, 3), ..Default::default() },
        seed + 1,
    );
    let per_app = Platform::new(
        comm_hom.procs.clone(),
        Links::PerApp((0..apps.a()).map(|a| 0.5 + a as f64).collect()),
    )
    .unwrap();
    let het = random_fully_heterogeneous(
        &PlatformGenConfig { procs: apps.total_stages() + 2, modes: (2, 3), ..Default::default() },
        apps.a(),
        seed + 2,
    );
    vec![uniform, comm_hom, per_app, het]
}

const MODELS: [CommModel; 2] = [CommModel::Overlap, CommModel::NoOverlap];

fn assert_bits(new: f64, old: f64, what: &str) {
    assert_eq!(new.to_bits(), old.to_bits(), "{what}: {new} vs {old}");
}

// ---------------------------------------------------------------------------
// The soaks
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// `transfer_time_*` on dedicated platforms is the historical bare
    /// division, for every links shape and payload (zero included: the
    /// result must stay `+0.0`, not `-0.0`).
    #[test]
    fn transfer_primitives_are_bare_divisions(seed in 0u64..100_000) {
        let apps = random_apps(
            &AppGenConfig { apps: 2, stages: (1, 4), data: (0.0, 5.0), ..Default::default() },
            seed,
        );
        for pf in dedicated_platforms(&apps, seed + 10_000) {
            for a in 0..apps.a() {
                for u in 0..pf.p() {
                    for &bytes in &[0.0, 1.0, 3.5, apps.apps[a].input] {
                        assert_bits(
                            pf.transfer_time_input(a, u, bytes),
                            bytes / pf.bw_input(a, u),
                            "input",
                        );
                        assert_bits(
                            pf.transfer_time_output(a, u, bytes),
                            bytes / pf.bw_output(a, u),
                            "output",
                        );
                        for v in 0..pf.p() {
                            assert_bits(
                                pf.transfer_time_inter(a, u, v, bytes),
                                bytes / pf.bw_inter(a, u, v),
                                "inter",
                            );
                        }
                    }
                }
            }
        }
    }

    /// Plain-mapping evaluation matches the pre-refactor oracle bit for
    /// bit: every breakdown term, app period/latency, and the full
    /// `evaluate` aggregate.
    #[test]
    fn plain_evaluator_matches_pre_refactor_oracle(seed in 0u64..100_000) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x0D0C);
        let apps = random_apps(
            &AppGenConfig { apps: 2, stages: (1, 4), data: (0.0, 5.0), ..Default::default() },
            seed,
        );
        for pf in dedicated_platforms(&apps, seed + 10_000) {
            let Some(mapping) = random_mapping(&apps, &pf, &mut rng) else { continue };
            let eval = Evaluator::new(&apps, &pf);
            for a in 0..apps.a() {
                let new = eval.chain_breakdown(&mapping, a);
                let old = oracle_chain_breakdown(&apps, &pf, &mapping, a);
                prop_assert_eq!(new.len(), old.len());
                for (n, o) in new.iter().zip(&old) {
                    assert_bits(n.incoming, o.0, "breakdown incoming");
                    assert_bits(n.compute, o.1, "breakdown compute");
                    assert_bits(n.outgoing, o.2, "breakdown outgoing");
                }
                for model in MODELS {
                    let t = old.iter().map(|&(i, c, o)| model.combine(i, c, o)).fold(0.0, fmax);
                    assert_bits(eval.app_period(&mapping, a, model), t, "app period");
                }
                let mut l = old[0].0;
                for &(_, c, o) in &old {
                    l += c + o;
                }
                assert_bits(eval.app_latency(&mapping, a), l, "app latency");
            }
        }
    }

    /// General (shared-processor) evaluation matches its pre-refactor
    /// oracle on every per-processor cycle and the global aggregates.
    #[test]
    fn general_evaluator_matches_pre_refactor_oracle(seed in 0u64..100_000) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x6E4E);
        let apps = random_apps(
            &AppGenConfig { apps: 2, stages: (1, 3), data: (0.0, 5.0), ..Default::default() },
            seed,
        );
        for pf in dedicated_platforms(&apps, seed + 10_000) {
            let mapping = random_general(&apps, &pf, &mut rng);
            let eval = GeneralEvaluator::new(&apps, &pf);
            for model in MODELS {
                for u in 0..pf.p() {
                    assert_bits(
                        eval.proc_cycle(&mapping, u, model),
                        oracle_proc_cycle(&apps, &pf, &mapping, u, model),
                        "general proc cycle",
                    );
                }
            }
        }
    }

    /// Replicated evaluation matches its pre-refactor oracle on every
    /// app period and latency.
    #[test]
    fn replicated_evaluator_matches_pre_refactor_oracle(seed in 0u64..100_000) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x4E97);
        let apps = random_apps(
            &AppGenConfig { apps: 2, stages: (1, 3), data: (0.0, 5.0), ..Default::default() },
            seed,
        );
        for pf in dedicated_platforms(&apps, seed + 10_000) {
            let Some(mapping) = random_replicated(&apps, &pf, &mut rng) else { continue };
            let eval = ReplicatedEvaluator::new(&apps, &pf);
            for a in 0..apps.a() {
                for model in MODELS {
                    assert_bits(
                        eval.app_period(&mapping, a, model),
                        oracle_replicated_period(&apps, &pf, &mapping, a, model),
                        "replicated period",
                    );
                }
                assert_bits(
                    eval.app_latency(&mapping, a),
                    oracle_replicated_latency(&apps, &pf, &mapping, a),
                    "replicated latency",
                );
            }
        }
    }

    /// The conservative limit: a zero-hop-latency multistage fabric prices
    /// every mapping exactly like the uniform dedicated platform it
    /// shadows — the gated overhead add must not so much as flip a sign
    /// bit on zero-size payloads.
    #[test]
    fn zero_latency_fabric_equals_uniform_links(seed in 0u64..100_000) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xFAB0);
        let apps = random_apps(
            &AppGenConfig { apps: 2, stages: (1, 4), data: (0.0, 5.0), ..Default::default() },
            seed,
        );
        let dedicated = random_fully_homogeneous(
            &PlatformGenConfig {
                procs: apps.total_stages() + 2,
                modes: (1, 3),
                ..Default::default()
            },
            seed + 10_000,
        );
        let b = match dedicated.links {
            Links::Uniform(b) => b,
            _ => unreachable!("fully homogeneous platforms have uniform links"),
        };
        let fabric = Platform::multistage(
            dedicated.procs.clone(),
            MultistageNetwork::new(b, 0.0).unwrap(),
        )
        .unwrap();
        let Some(mapping) = random_mapping(&apps, &dedicated, &mut rng) else { return };
        let ev_d = Evaluator::new(&apps, &dedicated);
        let ev_f = Evaluator::new(&apps, &fabric);
        for model in MODELS {
            let d = ev_d.evaluate(&mapping, model);
            let f = ev_f.evaluate(&mapping, model);
            assert_bits(f.period, d.period, "fabric period");
            assert_bits(f.latency, d.latency, "fabric latency");
            assert_bits(f.energy, d.energy, "fabric energy");
        }
    }
}
