//! Generator determinism: the repro-bundle subsystem stores *recipes*
//! (config + seed) instead of full instances, so bundles are only as
//! trustworthy as the guarantee that the same recipe regenerates the
//! bit-identical instance — across calls, entry points and platform
//! families. These tests pin that guarantee via the structural digests.

use cpo_model::bundle::{GenRecipe, PlatformKind};
use cpo_model::generator::{
    random_apps, random_comm_homogeneous, random_fully_heterogeneous, random_fully_homogeneous,
    AppGenConfig, PlatformGenConfig,
};
use cpo_model::hash::{digest_hex, hash_instance, hash_spec};
use cpo_model::prelude::*;

fn app_cfg() -> AppGenConfig {
    AppGenConfig { apps: 3, stages: (2, 5), work: (1.0, 9.0), data: (0.0, 4.0), integral: false }
}

fn pf_cfg() -> PlatformGenConfig {
    PlatformGenConfig {
        procs: 5,
        modes: (1, 3),
        speed: (1.0, 8.0),
        bandwidth: (1.0, 4.0),
        e_stat: (0.0, 2.0),
        integral: false,
    }
}

#[test]
fn app_generator_is_deterministic_per_seed() {
    for seed in [0u64, 1, 42, u64::MAX] {
        let a = random_apps(&app_cfg(), seed);
        let b = random_apps(&app_cfg(), seed);
        assert_eq!(a, b, "seed {seed}: repeated calls must agree structurally");
    }
    // And actually sensitive to the seed.
    assert_ne!(random_apps(&app_cfg(), 1), random_apps(&app_cfg(), 2));
}

#[test]
fn platform_generators_are_deterministic_per_seed() {
    let apps = random_apps(&app_cfg(), 7);
    for seed in [0u64, 9, 1234] {
        assert_eq!(
            random_fully_homogeneous(&pf_cfg(), seed),
            random_fully_homogeneous(&pf_cfg(), seed)
        );
        assert_eq!(
            random_comm_homogeneous(&pf_cfg(), seed),
            random_comm_homogeneous(&pf_cfg(), seed)
        );
        assert_eq!(
            random_fully_heterogeneous(&pf_cfg(), apps.apps.len(), seed),
            random_fully_heterogeneous(&pf_cfg(), apps.apps.len(), seed)
        );
    }
    assert_ne!(random_comm_homogeneous(&pf_cfg(), 1), random_comm_homogeneous(&pf_cfg(), 2));
}

#[test]
fn structural_digest_is_stable_across_calls() {
    let d1 = {
        let apps = random_apps(&app_cfg(), 11);
        let pf = random_comm_homogeneous(&pf_cfg(), 13);
        digest_hex(hash_instance(&apps, &pf))
    };
    let d2 = {
        let apps = random_apps(&app_cfg(), 11);
        let pf = random_comm_homogeneous(&pf_cfg(), 13);
        digest_hex(hash_instance(&apps, &pf))
    };
    assert_eq!(d1, d2);
    assert_eq!(d1.len(), 32, "digests are 128-bit hex");
}

#[test]
fn recipes_rematerialize_bit_identically_for_every_platform_kind() {
    let kinds = [
        PlatformKind::FullyHomogeneous,
        PlatformKind::CommHomogeneous,
        PlatformKind::FullyHeterogeneous,
        PlatformKind::Multistage { bandwidth: 2.0, hop_latency: 0.1 },
    ];
    for kind in kinds {
        let recipe = GenRecipe {
            app_cfg: app_cfg(),
            platform_cfg: pf_cfg(),
            platform_kind: kind.clone(),
            app_seed: 99,
            platform_seed: 101,
            spec: ProblemSpec::new(Objective::Period, Strategy::Interval, CommModel::Overlap),
        };
        let a = recipe.materialize().expect("recipe materializes");
        let b = recipe.materialize().expect("recipe materializes");
        assert_eq!(
            hash_instance(&a.apps, &a.platform),
            hash_instance(&b.apps, &b.platform),
            "{kind:?}: rematerialized instance digests must agree"
        );
        assert_eq!(hash_spec(&a.problem), hash_spec(&b.problem));
        // The JSON round trip of the recipe regenerates the same instance
        // too — this is what `replay` relies on.
        let json =
            cpo_model::io::serde_json_error::to_string(&recipe).expect("recipe serializes");
        let back: GenRecipe =
            cpo_model::io::serde_json_error::from_str(&json).expect("recipe parses");
        let c = back.materialize().expect("round-tripped recipe materializes");
        assert_eq!(
            hash_instance(&a.apps, &a.platform),
            hash_instance(&c.apps, &c.platform),
            "{kind:?}: digest must survive the JSON round trip"
        );
    }
}
