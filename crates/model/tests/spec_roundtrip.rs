//! Property tests: the problem IR round-trips through JSON bit-for-bit.
//!
//! `ProblemSpec`, `SolveOutcome` (all four variants, all three mapping
//! kinds) and `SolveRequest` (spec + full instance, including
//! non-integral f64 works/speeds) must survive
//! serialize → parse → compare exactly — the shortest-round-trip f64
//! printing and the hand-rolled JSON parser may not lose a single ULP.

use cpo_model::generator::{
    random_apps, random_fully_homogeneous, AppGenConfig, PlatformGenConfig,
};
use cpo_model::prelude::*;
use cpo_model::replication::ReplicatedMapping;
use cpo_model::sharing::GeneralMapping;
// Explicit import: `proptest::prelude::Strategy` (the trait) would
// otherwise make the glob-imported spec `Strategy` ambiguous.
use cpo_model::spec::Strategy;
use proptest::prelude::*;

fn objective_of(i: u64) -> Objective {
    [
        Objective::Period,
        Objective::Latency,
        Objective::Energy,
        Objective::PeriodEnergyFront,
        Objective::PeriodLatencyFront,
    ][(i % 5) as usize]
}

fn strategy_of(i: u64) -> Strategy {
    [Strategy::OneToOne, Strategy::Interval, Strategy::Replicated, Strategy::General]
        [(i % 4) as usize]
}

fn comm_of(i: u64) -> CommModel {
    if i.is_multiple_of(2) {
        CommModel::Overlap
    } else {
        CommModel::NoOverlap
    }
}

/// Awkward but finite f64s: non-terminating binary fractions, tiny and
/// huge magnitudes, exact integers.
fn bound_of(i: u64) -> f64 {
    match i % 6 {
        0 => (i as f64 + 1.0) / 3.0,
        1 => 0.1 * (i as f64 + 1.0),
        2 => (i as f64 + 1.0) * 1e-12,
        3 => (i as f64 + 1.0) * 1e15,
        4 => i as f64 + 1.0,
        _ => std::f64::consts::PI * (i as f64 + 1.0),
    }
}

fn spec_of(o: u64, s: u64, c: u64, b: u64, hints: u64) -> ProblemSpec {
    let mut spec = ProblemSpec::new(objective_of(o), strategy_of(s), comm_of(c));
    if b.is_multiple_of(2) {
        spec.constraints.period = Some(vec![bound_of(b), bound_of(b + 1)]);
    }
    if b.is_multiple_of(3) {
        spec.constraints.latency = Some(vec![bound_of(b + 2), bound_of(b + 3)]);
    }
    if b.is_multiple_of(5) {
        spec.constraints.energy = Some(bound_of(b + 4));
    }
    spec.hints = SolverHints {
        exact_fallback: hints & 1 != 0,
        heuristic_fallback: hints & 2 != 0,
        sweep_threads: (hints & 4 != 0).then_some((hints % 7) as usize + 1),
        local_search_iterations: (hints & 8 != 0).then_some((hints % 1000) as usize),
        seed: (hints & 16 != 0).then_some(hints),
    };
    spec
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn problem_spec_roundtrips(o in 0u64..5, s in 0u64..4, c in 0u64..2,
                               b in 0u64..1_000, hints in 0u64..64) {
        let spec = spec_of(o, s, c, b, hints);
        let json = spec.to_json().unwrap();
        prop_assert_eq!(ProblemSpec::from_json(&json).unwrap(), spec);
    }

    #[test]
    fn solve_outcome_roundtrips(seed in 0u64..100_000, kind in 0u64..6) {
        let mapping = Mapping::new()
            .with(Interval::new(0, 0, 1), (seed % 3) as usize, 0)
            .with(Interval::new(1, 0, 0), 3, 1);
        let outcome = match kind {
            0 => SolveOutcome::Solution(SolvedPoint {
                objective: bound_of(seed),
                mapping: SolvedMapping::Plain(mapping),
            }),
            1 => SolveOutcome::Solution(SolvedPoint {
                objective: bound_of(seed),
                mapping: SolvedMapping::Replicated(
                    ReplicatedMapping::new()
                        .with(Interval::new(0, 0, 1), vec![0, 2], vec![1, 1])
                        .with(Interval::new(1, 0, 0), vec![1], vec![0]),
                ),
            }),
            2 => SolveOutcome::Solution(SolvedPoint {
                objective: bound_of(seed),
                mapping: SolvedMapping::General(
                    GeneralMapping::new()
                        .with(Interval::new(0, 0, 1), 0, 1)
                        .with(Interval::new(1, 0, 0), 0, 1),
                ),
            }),
            3 => SolveOutcome::Front(
                (0..(seed % 4 + 1))
                    .map(|i| FrontEntry {
                        achieved: bound_of(seed + i),
                        objective: bound_of(seed + i + 7),
                        mapping: SolvedMapping::Plain(mapping.clone()),
                    })
                    .collect(),
            ),
            4 => SolveOutcome::Infeasible {
                reason: format!("no mapping at bound {}", bound_of(seed)),
            },
            _ => SolveOutcome::Unsupported {
                reason: format!("ünsupported \"combo\" #{seed}\n(second line)"),
            },
        };
        let pretty = outcome.to_json().unwrap();
        prop_assert_eq!(&SolveOutcome::from_json(&pretty).unwrap(), &outcome);
        let compact = outcome.to_json_compact().unwrap();
        prop_assert!(!compact.contains('\n'));
        prop_assert_eq!(&SolveOutcome::from_json(&compact).unwrap(), &outcome);
    }

    #[test]
    fn solve_request_roundtrips_with_full_instance(seed in 0u64..100_000) {
        // Non-integral works/speeds: stress the shortest-round-trip f64
        // printing with full-precision decimals.
        let apps = random_apps(
            &AppGenConfig { apps: 2, stages: (1, 3), integral: false, ..Default::default() },
            seed,
        );
        let platform = random_fully_homogeneous(
            &PlatformGenConfig { procs: 3, modes: (1, 3), integral: false, ..Default::default() },
            seed + 1,
        );
        let spec = spec_of(seed, seed / 5, seed / 7, seed % 97, seed % 64);
        let req = SolveRequest::new(format!("instance #{seed}"), apps, platform, spec);
        let pretty = req.to_json().unwrap();
        prop_assert_eq!(&SolveRequest::from_json(&pretty).unwrap(), &req);
        let compact = req.to_json_compact().unwrap();
        prop_assert!(!compact.contains('\n'));
        prop_assert_eq!(&SolveRequest::from_json(&compact).unwrap(), &req);
    }
}
