//! Energy model (Section 3.5 of the paper).
//!
//! The energy consumed by the platform is the sum over enrolled processors
//! of `E(u) = E_stat(u) + E_dyn(s_u)`, where the dynamic part is
//! `E_dyn(s) = s^α` for an arbitrary rational `α > 1` (α = 2 in the
//! Section 2 example, following Ishihara & Yasuura). `E(u)` is an energy
//! *per time unit* (a power), which is why the paper always pairs the energy
//! criterion with the period.

use crate::mapping::Mapping;
use crate::platform::Platform;
use serde::{Deserialize, Serialize};

/// The `E = E_stat + s^α` energy model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// Exponent `α > 1` of the dynamic energy.
    pub alpha: f64,
}

impl Default for EnergyModel {
    /// `α = 2`, the assumption of the Section 2 example.
    fn default() -> Self {
        EnergyModel { alpha: 2.0 }
    }
}

impl EnergyModel {
    /// Build a model with a custom exponent; panics if `α ≤ 1` (the paper
    /// requires `α > 1`).
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 1.0, "the energy exponent must satisfy α > 1");
        EnergyModel { alpha }
    }

    /// Dynamic energy `s^α` of a processor running at speed `s`.
    #[inline]
    pub fn dynamic(&self, speed: f64) -> f64 {
        if self.alpha == 2.0 {
            speed * speed
        } else {
            speed.powf(self.alpha)
        }
    }

    /// Full energy `E_stat + s^α` of processor `u` running mode `mode`.
    #[inline]
    pub fn proc_energy(&self, platform: &Platform, proc: usize, mode: usize) -> f64 {
        let p = &platform.procs[proc];
        p.e_stat + self.dynamic(p.speed(mode))
    }

    /// Total energy of a mapping: sum over enrolled processors.
    pub fn mapping_energy(&self, mapping: &Mapping, platform: &Platform) -> f64 {
        mapping
            .enrolled_procs()
            .map(|(proc, mode)| self.proc_energy(platform, proc, mode))
            .sum()
    }

    /// Cheapest energy of processor `u` among modes with speed ≥ `min_speed`
    /// (i.e. the slowest feasible mode). Returns `None` when even the
    /// highest mode is too slow.
    ///
    /// Because `α > 1` makes `s ↦ s^α` strictly increasing, the slowest
    /// feasible mode is always the cheapest — this is the key monotonicity
    /// exploited by the Theorem 18/19 constructions.
    pub fn cheapest_mode_at_least(
        &self,
        platform: &Platform,
        proc: usize,
        min_speed: f64,
    ) -> Option<(usize, f64)> {
        let mode = platform.procs[proc].slowest_mode_at_least(min_speed)?;
        Some((mode, self.proc_energy(platform, proc, mode)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::{Interval, Mapping};
    use crate::platform::{Platform, Processor};

    fn platform() -> Platform {
        Platform::comm_homogeneous(
            vec![
                Processor::new(vec![3.0, 6.0]).unwrap(),
                Processor::new(vec![6.0, 8.0]).unwrap().with_static_energy(5.0),
                Processor::new(vec![1.0, 6.0]).unwrap(),
            ],
            1.0,
        )
        .unwrap()
    }

    #[test]
    fn default_alpha_is_square() {
        let e = EnergyModel::default();
        assert_eq!(e.dynamic(3.0), 9.0);
        assert_eq!(e.dynamic(8.0), 64.0);
    }

    #[test]
    fn arbitrary_alpha() {
        let e = EnergyModel::new(3.0);
        assert!((e.dynamic(2.0) - 8.0).abs() < 1e-12);
        let e = EnergyModel::new(1.5);
        assert!((e.dynamic(4.0) - 8.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "α > 1")]
    fn rejects_alpha_at_most_one() {
        let _ = EnergyModel::new(1.0);
    }

    #[test]
    fn static_energy_is_included() {
        let pf = platform();
        let e = EnergyModel::default();
        assert_eq!(e.proc_energy(&pf, 1, 0), 5.0 + 36.0);
        assert_eq!(e.proc_energy(&pf, 0, 0), 9.0);
    }

    #[test]
    fn mapping_energy_sums_enrolled() {
        let pf = platform();
        let e = EnergyModel::default();
        let m = Mapping::new()
            .with(Interval::new(0, 0, 0), 0, 0)
            .with(Interval::new(1, 0, 0), 2, 1);
        assert_eq!(e.mapping_energy(&m, &pf), 9.0 + 36.0);
    }

    #[test]
    fn cheapest_feasible_mode() {
        let pf = platform();
        let e = EnergyModel::default();
        // Need speed ≥ 4 on P0 {3, 6}: mode 1 at energy 36.
        assert_eq!(e.cheapest_mode_at_least(&pf, 0, 4.0), Some((1, 36.0)));
        // Need speed ≥ 2 on P0: slowest mode 0 at energy 9.
        assert_eq!(e.cheapest_mode_at_least(&pf, 0, 2.0), Some((0, 9.0)));
        // Need speed ≥ 100: infeasible.
        assert_eq!(e.cheapest_mode_at_least(&pf, 0, 100.0), None);
        // Speed 0 requirement: slowest mode.
        assert_eq!(e.cheapest_mode_at_least(&pf, 2, 0.0), Some((0, 1.0)));
    }
}
