//! Communication topology — *which network carries the data*.
//!
//! The paper's platform model (Section 3.2) assumes **dedicated**
//! point-to-point links: every pair of processors owns a private link of
//! some bandwidth, and transfers on distinct links never interfere. That
//! assumption was baked inline into every layer (bandwidth accessors,
//! DP comm terms, simulator transfer edges). This module lifts it into a
//! typed, swappable axis:
//!
//! * [`CommTopology::Dedicated`] — the paper's model, verbatim. All
//!   communication cost comes from the [`crate::platform::Links`]
//!   bandwidths; behavior is bitwise-identical to the pre-topology code.
//! * [`CommTopology::Multistage`] — a Benes/rearrangeable multistage
//!   interconnect (Kannan's KR-Benes construction; Zhang et al.'s
//!   Benes-based optical NoC cost model). Processors sit on the ports of
//!   a `2·log₂N − 1`-stage switching fabric; **inter-processor** transfers
//!   traverse every stage and pay a per-stage hop latency, while the
//!   virtual `P_in_a` / `P_out_a` endpoints attach through dedicated
//!   front-end links that bypass the fabric (so external I/O never
//!   contends inside the network).
//!
//! ## Cost model
//!
//! Under `Multistage { link_bandwidth: b, hop_latency: h }` on a platform
//! of `p` processors (`N = 2^⌈log₂ max(p,2)⌉` ports,
//! `S = 2·log₂N − 1` stages):
//!
//! * input/output edge of size `δ`:  `δ / b` (front-end link, no hops);
//! * inter-processor edge of size `δ`:  `δ / b + S·h`.
//!
//! Because interval mappings enroll each processor for exactly one
//! interval, every processor sends at most one and receives at most one
//! inter-processor flow per data set — the traffic is a **partial
//! permutation**, which a rearrangeable network routes with zero
//! contention (that is the definition of rearrangeability). The uniform
//! comm-homogeneous structure the paper's exact algorithms rely on
//! therefore survives intact; `cpo_matching::benes` computes the actual
//! stage settings and certifies the contention-free routing.

use crate::error::ModelError;
use serde::{Deserialize, Serialize};

/// The interconnect class carrying inter-processor (and I/O) transfers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub enum CommTopology {
    /// Dedicated point-to-point links — the paper's Section 3.2 model.
    /// Communication cost comes from [`crate::platform::Links`] unchanged.
    #[default]
    Dedicated,
    /// A Benes rearrangeable multistage interconnect: shared switch
    /// stages between the processors, dedicated front-end links for the
    /// virtual I/O endpoints.
    Multistage(MultistageNetwork),
}

impl CommTopology {
    /// Whether this is the multistage variant.
    #[inline]
    pub fn is_multistage(&self) -> bool {
        matches!(self, CommTopology::Multistage(_))
    }
}

/// Parameters of a Benes multistage interconnect.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MultistageNetwork {
    /// Bandwidth of every internal stage link and of the dedicated I/O
    /// front-end links (the network is built from identical links).
    pub link_bandwidth: f64,
    /// Latency added per traversed switch stage (per transfer, not per
    /// byte). `0.0` models an ideal circuit-switched fabric.
    pub hop_latency: f64,
}

impl MultistageNetwork {
    /// Build a network description, validating the parameters.
    pub fn new(link_bandwidth: f64, hop_latency: f64) -> Result<Self, ModelError> {
        let net = MultistageNetwork { link_bandwidth, hop_latency };
        net.validate()?;
        Ok(net)
    }

    /// Validate: positive finite bandwidth, non-negative finite latency.
    pub fn validate(&self) -> Result<(), ModelError> {
        if !(self.link_bandwidth.is_finite() && self.link_bandwidth > 0.0) {
            return Err(ModelError::InvalidBandwidth {
                reason: "non-positive multistage link bandwidth",
            });
        }
        if !(self.hop_latency.is_finite() && self.hop_latency >= 0.0) {
            return Err(ModelError::InvalidBandwidth {
                reason: "negative or non-finite multistage hop latency",
            });
        }
        Ok(())
    }

    /// Number of network ports for a `p`-processor platform: the next
    /// power of two ≥ `max(p, 2)` (a Benes network needs `N = 2^k ≥ 2`).
    pub fn ports_for(p: usize) -> usize {
        p.max(2).next_power_of_two()
    }

    /// Number of switch stages `2·log₂N − 1` for a `p`-processor platform.
    pub fn stages_for(p: usize) -> usize {
        let n = Self::ports_for(p);
        2 * (usize::BITS - 1 - n.leading_zeros()) as usize - 1
    }

    /// Total per-transfer latency of a full fabric traversal:
    /// `stages_for(p) · hop_latency`.
    pub fn traversal_overhead(&self, p: usize) -> f64 {
        Self::stages_for(p) as f64 * self.hop_latency
    }
}

/// A uniform communication cost structure: one bandwidth for every edge
/// plus a per-transfer overhead on inter-processor edges only.
///
/// This is the shape every comm-homogeneous solver in `cpo_core`
/// programs against. `Dedicated` uniform platforms have
/// `inter_overhead == 0.0`; `Multistage` platforms have
/// `inter_overhead == traversal_overhead(p)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UniformComm {
    /// Bandwidth shared by every edge (input, inter, output).
    pub bandwidth: f64,
    /// Per-transfer latency added to inter-processor edges (never to
    /// the `P_in` / `P_out` front-end edges).
    pub inter_overhead: f64,
}

impl UniformComm {
    /// A plain dedicated-uniform structure (no overhead).
    #[inline]
    pub fn dedicated(bandwidth: f64) -> Self {
        UniformComm { bandwidth, inter_overhead: 0.0 }
    }

    /// Transfer time of an input/output edge of `bytes` data.
    #[inline]
    pub fn io_time(&self, bytes: f64) -> f64 {
        bytes / self.bandwidth
    }

    /// Transfer time of an inter-processor edge of `bytes` data.
    ///
    /// The overhead add is gated on `!= 0.0` so the zero-overhead case
    /// is the *bitwise-identical* single division of the pre-topology
    /// code (`x + 0.0` would flip a `-0.0` transfer time to `+0.0`).
    #[inline]
    pub fn inter_time(&self, bytes: f64) -> f64 {
        let t = bytes / self.bandwidth;
        if self.inter_overhead != 0.0 {
            t + self.inter_overhead
        } else {
            t
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ports_and_stages() {
        assert_eq!(MultistageNetwork::ports_for(1), 2);
        assert_eq!(MultistageNetwork::ports_for(2), 2);
        assert_eq!(MultistageNetwork::ports_for(3), 4);
        assert_eq!(MultistageNetwork::ports_for(4), 4);
        assert_eq!(MultistageNetwork::ports_for(5), 8);
        assert_eq!(MultistageNetwork::ports_for(8), 8);
        assert_eq!(MultistageNetwork::ports_for(9), 16);
        assert_eq!(MultistageNetwork::stages_for(2), 1);
        assert_eq!(MultistageNetwork::stages_for(4), 3);
        assert_eq!(MultistageNetwork::stages_for(8), 5);
        assert_eq!(MultistageNetwork::stages_for(16), 7);
    }

    #[test]
    fn validation() {
        assert!(MultistageNetwork::new(1.0, 0.0).is_ok());
        assert!(MultistageNetwork::new(1.0, 0.25).is_ok());
        assert!(MultistageNetwork::new(0.0, 0.0).is_err());
        assert!(MultistageNetwork::new(-1.0, 0.0).is_err());
        assert!(MultistageNetwork::new(f64::INFINITY, 0.0).is_err());
        assert!(MultistageNetwork::new(1.0, -0.5).is_err());
        assert!(MultistageNetwork::new(1.0, f64::NAN).is_err());
        // -0.0 hop latency passes the `>= 0` check, like data sizes do.
        assert!(MultistageNetwork::new(1.0, -0.0).is_ok());
    }

    #[test]
    fn overheads() {
        let net = MultistageNetwork::new(2.0, 0.5).unwrap();
        assert_eq!(net.traversal_overhead(4), 1.5); // 3 stages × 0.5
        assert_eq!(net.traversal_overhead(8), 2.5); // 5 stages × 0.5
        let uc = UniformComm { bandwidth: 2.0, inter_overhead: 1.5 };
        assert_eq!(uc.io_time(4.0), 2.0);
        assert_eq!(uc.inter_time(4.0), 3.5);
    }

    #[test]
    fn zero_overhead_inter_time_is_the_bare_division() {
        // The gated add must preserve -0.0 bit patterns exactly.
        let uc = UniformComm::dedicated(2.0);
        assert_eq!(uc.inter_time(-0.0).to_bits(), (-0.0f64).to_bits());
        assert_eq!(uc.io_time(-0.0).to_bits(), (-0.0f64).to_bits());
    }

    #[test]
    fn serde_default_is_dedicated() {
        use crate::io::serde_json_error;
        let t: CommTopology = serde_json_error::from_str("\"Dedicated\"").unwrap();
        assert_eq!(t, CommTopology::Dedicated);
        assert!(!t.is_multistage());
        let m: CommTopology = serde_json_error::from_str(
            r#"{"Multistage":{"link_bandwidth":1.0,"hop_latency":0.1}}"#,
        )
        .unwrap();
        assert!(m.is_multistage());
        assert_eq!(CommTopology::default(), CommTopology::Dedicated);
    }
}
