//! Deterministic instance generators.
//!
//! The paper's evaluation is analytical; to *certify* its complexity tables
//! empirically we need reproducible synthetic instances. Everything here is
//! seeded (`rand::rngs::StdRng`), so every experiment in EXPERIMENTS.md can
//! be regenerated bit-for-bit.
//!
//! Besides uniform random instances, the module ships the Section 2
//! motivating example ([`section2_example`]) and named realistic workloads
//! from the application domains the paper's introduction cites (video
//! encoding/decoding, DSP, image processing).

#![allow(clippy::needless_range_loop)]
use crate::application::{AppSet, Application, Stage};
use crate::platform::{Links, Platform, Processor};
use rand::prelude::*;
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

/// Ranges for random application generation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppGenConfig {
    /// Number of applications.
    pub apps: usize,
    /// Min/max number of stages per application (inclusive).
    pub stages: (usize, usize),
    /// Computation requirement range.
    pub work: (f64, f64),
    /// Data size range (applied to `δ^0 … δ^n`).
    pub data: (f64, f64),
    /// Use integer-valued works/sizes (keeps arithmetic exact in tests).
    pub integral: bool,
}

impl Default for AppGenConfig {
    fn default() -> Self {
        AppGenConfig { apps: 2, stages: (2, 6), work: (1.0, 10.0), data: (0.0, 5.0), integral: true }
    }
}

/// Ranges for random platform generation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlatformGenConfig {
    /// Number of processors.
    pub procs: usize,
    /// Min/max number of modes per processor (inclusive).
    pub modes: (usize, usize),
    /// Speed range.
    pub speed: (f64, f64),
    /// Bandwidth range (only used for heterogeneous links).
    pub bandwidth: (f64, f64),
    /// Static energy range.
    pub e_stat: (f64, f64),
    /// Use integer-valued speeds/bandwidths.
    pub integral: bool,
}

impl Default for PlatformGenConfig {
    fn default() -> Self {
        PlatformGenConfig {
            procs: 4,
            modes: (1, 3),
            speed: (1.0, 10.0),
            bandwidth: (1.0, 5.0),
            e_stat: (0.0, 0.0),
            integral: true,
        }
    }
}

fn sample(rng: &mut StdRng, range: (f64, f64), integral: bool) -> f64 {
    if range.0 == range.1 {
        return range.0;
    }
    if integral {
        rng.gen_range(range.0.round() as i64..=range.1.round() as i64) as f64
    } else {
        rng.gen_range(range.0..=range.1)
    }
}

fn sample_positive(rng: &mut StdRng, range: (f64, f64), integral: bool) -> f64 {
    let lo = range.0.max(if integral { 1.0 } else { f64::MIN_POSITIVE });
    sample(rng, (lo, range.1.max(lo)), integral)
}

/// Generate a random application set.
pub fn random_apps(cfg: &AppGenConfig, seed: u64) -> AppSet {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut apps = Vec::with_capacity(cfg.apps);
    for a in 0..cfg.apps {
        let n = rng.gen_range(cfg.stages.0..=cfg.stages.1);
        let input = sample(&mut rng, cfg.data, cfg.integral);
        let stages = (0..n)
            .map(|_| {
                Stage::new(
                    sample_positive(&mut rng, cfg.work, cfg.integral),
                    sample(&mut rng, cfg.data, cfg.integral),
                )
            })
            .collect();
        apps.push(
            Application::named(format!("rand-app-{a}"), input, stages, 1.0)
                .expect("generated stages are valid"),
        );
    }
    AppSet::new(apps).expect("at least one application")
}

/// Generate a fully homogeneous platform (identical speed sets, uniform
/// bandwidth).
pub fn random_fully_homogeneous(cfg: &PlatformGenConfig, seed: u64) -> Platform {
    let mut rng = StdRng::seed_from_u64(seed);
    let m = rng.gen_range(cfg.modes.0..=cfg.modes.1);
    let speeds: Vec<f64> =
        (0..m).map(|_| sample_positive(&mut rng, cfg.speed, cfg.integral)).collect();
    let b = sample_positive(&mut rng, cfg.bandwidth, cfg.integral);
    let e_stat = sample(&mut rng, cfg.e_stat, cfg.integral);
    let proto = Processor::new(speeds).expect("positive speeds").with_static_energy(e_stat);
    Platform::new(vec![proto; cfg.procs], Links::Uniform(b)).expect("valid platform")
}

/// Generate a communication homogeneous platform (heterogeneous speed sets,
/// uniform bandwidth).
pub fn random_comm_homogeneous(cfg: &PlatformGenConfig, seed: u64) -> Platform {
    let mut rng = StdRng::seed_from_u64(seed);
    let procs = (0..cfg.procs)
        .map(|_| {
            let m = rng.gen_range(cfg.modes.0..=cfg.modes.1);
            let speeds: Vec<f64> =
                (0..m).map(|_| sample_positive(&mut rng, cfg.speed, cfg.integral)).collect();
            let e_stat = sample(&mut rng, cfg.e_stat, cfg.integral);
            Processor::new(speeds).expect("positive speeds").with_static_energy(e_stat)
        })
        .collect();
    let b = sample_positive(&mut rng, cfg.bandwidth, cfg.integral);
    Platform::new(procs, Links::Uniform(b)).expect("valid platform")
}

/// Generate a fully heterogeneous platform (heterogeneous speed sets and
/// per-pair bandwidths). `apps` is needed to size the input/output links.
pub fn random_fully_heterogeneous(cfg: &PlatformGenConfig, apps: usize, seed: u64) -> Platform {
    let mut rng = StdRng::seed_from_u64(seed);
    let procs: Vec<Processor> = (0..cfg.procs)
        .map(|_| {
            let m = rng.gen_range(cfg.modes.0..=cfg.modes.1);
            let speeds: Vec<f64> =
                (0..m).map(|_| sample_positive(&mut rng, cfg.speed, cfg.integral)).collect();
            let e_stat = sample(&mut rng, cfg.e_stat, cfg.integral);
            Processor::new(speeds).expect("positive speeds").with_static_energy(e_stat)
        })
        .collect();
    let p = cfg.procs;
    let mut inter = vec![vec![0.0; p]; p];
    for u in 0..p {
        inter[u][u] = f64::INFINITY.min(cfg.bandwidth.1); // self-links unused; keep finite
        for v in (u + 1)..p {
            let b = sample_positive(&mut rng, cfg.bandwidth, cfg.integral);
            inter[u][v] = b;
            inter[v][u] = b; // bidirectional links
        }
    }
    let mut input = vec![vec![0.0; p]; apps];
    let mut output = vec![vec![0.0; p]; apps];
    for a in 0..apps {
        for u in 0..p {
            input[a][u] = sample_positive(&mut rng, cfg.bandwidth, cfg.integral);
            output[a][u] = sample_positive(&mut rng, cfg.bandwidth, cfg.integral);
        }
    }
    Platform::new(procs, Links::Heterogeneous { inter, input, output }).expect("valid platform")
}

/// The exact Section 2 / Figure 1 motivating example: two applications
/// (3 and 4 stages) and three bi-modal processors with speed sets
/// {3, 6}, {6, 8}, {1, 6}; all bandwidths 1; `E_dyn(s) = s²`.
pub fn section2_example() -> (AppSet, Platform) {
    let app1 = Application::named(
        "App1",
        1.0,
        vec![Stage::new(3.0, 3.0), Stage::new(2.0, 2.0), Stage::new(1.0, 0.0)],
        1.0,
    )
    .expect("valid");
    let app2 = Application::named(
        "App2",
        0.0,
        vec![Stage::new(2.0, 1.0), Stage::new(6.0, 1.0), Stage::new(4.0, 1.0), Stage::new(2.0, 1.0)],
        1.0,
    )
    .expect("valid");
    let apps = AppSet::new(vec![app1, app2]).expect("two applications");
    let platform = Platform::comm_homogeneous(
        vec![
            Processor::new(vec![3.0, 6.0]).expect("valid"),
            Processor::new(vec![6.0, 8.0]).expect("valid"),
            Processor::new(vec![1.0, 6.0]).expect("valid"),
        ],
        1.0,
    )
    .expect("valid platform");
    (apps, platform)
}

/// A 7-stage H.264-style video encoding chain (the "video encoding" workload
/// of the paper's introduction): capture → downsample → motion estimation →
/// transform → quantize → entropy-code → mux. Works and data sizes are per
/// macroblock-row batch, in arbitrary units.
pub fn video_encoding_app(weight: f64) -> Application {
    Application::named(
        "video-encode",
        8.0,
        vec![
            Stage::new(2.0, 8.0),  // capture / color convert
            Stage::new(4.0, 4.0),  // downsample
            Stage::new(16.0, 4.0), // motion estimation (dominant)
            Stage::new(6.0, 4.0),  // DCT transform
            Stage::new(3.0, 2.0),  // quantization
            Stage::new(5.0, 1.0),  // entropy coding
            Stage::new(1.0, 1.0),  // mux / packetize
        ],
        weight,
    )
    .expect("valid")
}

/// A 5-stage software-defined-radio DSP chain: FIR filter → decimate →
/// FFT → demodulate → decode.
pub fn dsp_radio_app(weight: f64) -> Application {
    Application::named(
        "dsp-radio",
        6.0,
        vec![
            Stage::new(5.0, 6.0), // FIR filter
            Stage::new(2.0, 3.0), // decimation
            Stage::new(8.0, 3.0), // FFT
            Stage::new(4.0, 2.0), // demodulation
            Stage::new(3.0, 1.0), // decoding
        ],
        weight,
    )
    .expect("valid")
}

/// A 6-stage image-processing chain (the DataCutter-style filtering workload
/// cited in the introduction): load → denoise → segment → feature-extract →
/// classify → archive.
pub fn image_pipeline_app(weight: f64) -> Application {
    Application::named(
        "image-pipeline",
        10.0,
        vec![
            Stage::new(1.0, 10.0), // load / decode
            Stage::new(6.0, 10.0), // denoise
            Stage::new(9.0, 5.0),  // segmentation
            Stage::new(7.0, 2.0),  // feature extraction
            Stage::new(4.0, 1.0),  // classification
            Stage::new(1.0, 1.0),  // archive
        ],
        weight,
    )
    .expect("valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::PlatformClass;

    #[test]
    fn generation_is_deterministic() {
        let cfg = AppGenConfig::default();
        let a = random_apps(&cfg, 42);
        let b = random_apps(&cfg, 42);
        assert_eq!(a, b);
        let c = random_apps(&cfg, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn platform_classes_come_out_right() {
        let cfg = PlatformGenConfig::default();
        let fh = random_fully_homogeneous(&cfg, 7);
        assert_eq!(fh.class(), PlatformClass::FullyHomogeneous);
        // Comm-homogeneous platforms have uniform links by construction; the
        // processors are random so the class is CommHomogeneous unless the
        // draw happens to be identical (possible on tiny configs) — check
        // links only.
        let ch = random_comm_homogeneous(&cfg, 7);
        assert!(ch.has_homogeneous_links());
        let het = random_fully_heterogeneous(&cfg, 2, 7);
        assert!(!het.has_homogeneous_links() || het.class() == PlatformClass::FullyHeterogeneous);
    }

    #[test]
    fn random_apps_respect_ranges() {
        let cfg = AppGenConfig { apps: 5, stages: (3, 4), work: (2.0, 9.0), data: (0.0, 3.0), integral: true };
        let set = random_apps(&cfg, 1);
        assert_eq!(set.a(), 5);
        for app in &set.apps {
            assert!(app.n() >= 3 && app.n() <= 4);
            for st in &app.stages {
                assert!(st.work >= 2.0 && st.work <= 9.0);
                assert!(st.output >= 0.0 && st.output <= 3.0);
                assert_eq!(st.work, st.work.round());
            }
        }
    }

    #[test]
    fn section2_shapes() {
        let (apps, pf) = section2_example();
        assert_eq!(apps.a(), 2);
        assert_eq!(apps.apps[0].n(), 3);
        assert_eq!(apps.apps[1].n(), 4);
        assert_eq!(pf.p(), 3);
        assert_eq!(pf.procs[1].speeds(), &[6.0, 8.0]);
    }

    #[test]
    fn named_workloads_are_valid() {
        for app in [video_encoding_app(1.0), dsp_radio_app(1.0), image_pipeline_app(1.0)] {
            assert!(app.n() >= 5);
            assert!(app.total_work() > 0.0);
        }
    }

    #[test]
    fn heterogeneous_links_are_symmetric() {
        let cfg = PlatformGenConfig { procs: 5, ..Default::default() };
        let pf = random_fully_heterogeneous(&cfg, 3, 9);
        for u in 0..5 {
            for v in 0..5 {
                assert_eq!(pf.bw_inter(0, u, v), pf.bw_inter(0, v, u));
            }
        }
    }
}
