//! Applicative framework (Section 3.1 of the paper).
//!
//! `A` independent application workflows run concurrently; application `a`
//! is a linear chain of `n_a` stages. Stage `S_a^k` (1-based in the paper,
//! 0-based here) has computation requirement `w_a^k` and emits output data
//! of size `δ_a^k` towards the next stage; the chain reads `δ_a^0` from the
//! dedicated input processor `P_in_a` and the last stage sends `δ_a^{n_a}`
//! to the dedicated output processor `P_out_a`.

use crate::error::ModelError;
use serde::{Deserialize, Serialize};

/// One pipeline stage: computation requirement `w` and output data size `δ`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Stage {
    /// Computation requirement `w_a^k` (operations).
    pub work: f64,
    /// Size `δ_a^k` of the data emitted towards the next stage (or towards
    /// `P_out_a` for the last stage).
    pub output: f64,
}

impl Stage {
    /// Build a stage from its computation requirement and output size.
    pub fn new(work: f64, output: f64) -> Self {
        Stage { work, output }
    }
}

/// A linear-chain pipelined application.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct Application {
    /// Size `δ_a^0` of the input data read from `P_in_a`.
    pub input: f64,
    /// The `n_a` stages, in chain order.
    pub stages: Vec<Stage>,
    /// Priority weight `W_a > 0` of Eq. (6); `1.0` recovers the plain max.
    pub weight: f64,
    /// Optional human-readable name (used by examples and reports).
    pub name: String,
    /// Prefix sums of stage works: `work_prefix[k] = Σ_{i<k} w_i`, so that
    /// any interval work sum is O(1).
    #[serde(skip_serializing)]
    work_prefix: Vec<f64>,
}

impl<'de> Deserialize<'de> for Application {
    /// Deserialize through the validating constructor so the prefix-sum
    /// cache is always rebuilt (and invalid stage data rejected) — archived
    /// JSON can be hand-edited safely.
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        #[derive(Deserialize)]
        struct Raw {
            input: f64,
            stages: Vec<Stage>,
            weight: f64,
            #[serde(default)]
            name: String,
        }
        let raw = Raw::deserialize(deserializer)?;
        Application::named(
            if raw.name.is_empty() { "app".to_string() } else { raw.name },
            raw.input,
            raw.stages,
            raw.weight,
        )
        .map_err(serde::de::Error::custom)
    }
}

impl Application {
    /// Build an application; validates stage data.
    pub fn new(input: f64, stages: Vec<Stage>, weight: f64) -> Result<Self, ModelError> {
        Self::named("app", input, stages, weight)
    }

    /// Build a named application; validates stage data.
    pub fn named(
        name: impl Into<String>,
        input: f64,
        stages: Vec<Stage>,
        weight: f64,
    ) -> Result<Self, ModelError> {
        if stages.is_empty() {
            return Err(ModelError::EmptyApplication);
        }
        if !(weight.is_finite() && weight > 0.0) {
            return Err(ModelError::InvalidWeight { app: usize::MAX });
        }
        if !(input.is_finite() && input >= 0.0) {
            return Err(ModelError::InvalidStage { app: usize::MAX, stage: 0, reason: "invalid input size" });
        }
        for (k, st) in stages.iter().enumerate() {
            if !(st.work.is_finite() && st.work >= 0.0) {
                return Err(ModelError::InvalidStage { app: usize::MAX, stage: k, reason: "negative or non-finite work" });
            }
            if !(st.output.is_finite() && st.output >= 0.0) {
                return Err(ModelError::InvalidStage { app: usize::MAX, stage: k, reason: "negative or non-finite output size" });
            }
        }
        let mut work_prefix = Vec::with_capacity(stages.len() + 1);
        work_prefix.push(0.0);
        let mut acc = 0.0;
        for st in &stages {
            acc += st.work;
            work_prefix.push(acc);
        }
        Ok(Application { input, stages, weight, name: name.into(), work_prefix })
    }

    /// Shorthand: build from `(work, output)` pairs with weight 1.
    pub fn from_pairs(input: f64, pairs: &[(f64, f64)]) -> Self {
        Application::new(input, pairs.iter().map(|&(w, d)| Stage::new(w, d)).collect(), 1.0)
            .expect("valid pairs")
    }

    /// Number of stages `n_a`.
    #[inline]
    pub fn n(&self) -> usize {
        self.stages.len()
    }

    /// Total computation requirement `Σ_k w_a^k`.
    #[inline]
    pub fn total_work(&self) -> f64 {
        self.work_prefix[self.stages.len()]
    }

    /// Sum of works over the 0-based inclusive stage interval `[first, last]`.
    #[inline]
    pub fn interval_work(&self, first: usize, last: usize) -> f64 {
        debug_assert!(first <= last && last < self.n());
        self.work_prefix[last + 1] - self.work_prefix[first]
    }

    /// Data size entering stage `k` (0-based): `δ_a^0` for the first stage,
    /// otherwise the output of stage `k-1`.
    #[inline]
    pub fn input_of(&self, k: usize) -> f64 {
        if k == 0 {
            self.input
        } else {
            self.stages[k - 1].output
        }
    }

    /// Data size leaving stage `k` (0-based): `δ_a^{k+1}` in paper notation.
    #[inline]
    pub fn output_of(&self, k: usize) -> f64 {
        self.stages[k].output
    }

    /// Size of the final result `δ_a^{n_a}`.
    #[inline]
    pub fn result_size(&self) -> f64 {
        self.stages[self.n() - 1].output
    }
}

/// The set of `A` concurrent applications.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppSet {
    /// The applications, indexed by `a ∈ {0, …, A-1}`.
    pub apps: Vec<Application>,
}

impl AppSet {
    /// Build a set; validates it is non-empty.
    pub fn new(apps: Vec<Application>) -> Result<Self, ModelError> {
        if apps.is_empty() {
            return Err(ModelError::EmptyApplication);
        }
        Ok(AppSet { apps })
    }

    /// Build from a single application.
    pub fn single(app: Application) -> Self {
        AppSet { apps: vec![app] }
    }

    /// Number of applications `A`.
    #[inline]
    pub fn a(&self) -> usize {
        self.apps.len()
    }

    /// Total number of stages `N = Σ_a n_a`.
    #[inline]
    pub fn total_stages(&self) -> usize {
        self.apps.iter().map(|a| a.n()).sum()
    }

    /// Largest chain length `n_max`.
    #[inline]
    pub fn n_max(&self) -> usize {
        self.apps.iter().map(|a| a.n()).max().unwrap_or(0)
    }

    /// Iterate over `(app index, stage index)` pairs for all `N` stages.
    pub fn stage_indices(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.apps.iter().enumerate().flat_map(|(a, app)| (0..app.n()).map(move |k| (a, k)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn app123() -> Application {
        // The first application of the Section 2 example: input 1, stages
        // (3 ops, out 3), (2 ops, out 2), (1 op, out 0).
        Application::from_pairs(1.0, &[(3.0, 3.0), (2.0, 2.0), (1.0, 0.0)])
    }

    #[test]
    fn prefix_sums_match_direct_sums() {
        let app = app123();
        assert_eq!(app.total_work(), 6.0);
        assert_eq!(app.interval_work(0, 2), 6.0);
        assert_eq!(app.interval_work(0, 0), 3.0);
        assert_eq!(app.interval_work(1, 2), 3.0);
        assert_eq!(app.interval_work(2, 2), 1.0);
    }

    #[test]
    fn io_sizes() {
        let app = app123();
        assert_eq!(app.input_of(0), 1.0);
        assert_eq!(app.input_of(1), 3.0);
        assert_eq!(app.input_of(2), 2.0);
        assert_eq!(app.output_of(0), 3.0);
        assert_eq!(app.result_size(), 0.0);
    }

    #[test]
    fn rejects_empty_and_invalid() {
        assert!(Application::new(1.0, vec![], 1.0).is_err());
        assert!(Application::new(1.0, vec![Stage::new(-1.0, 0.0)], 1.0).is_err());
        assert!(Application::new(1.0, vec![Stage::new(1.0, f64::NAN)], 1.0).is_err());
        assert!(Application::new(1.0, vec![Stage::new(1.0, 0.0)], 0.0).is_err());
        assert!(Application::new(-1.0, vec![Stage::new(1.0, 0.0)], 1.0).is_err());
        assert!(AppSet::new(vec![]).is_err());
    }

    #[test]
    fn appset_totals() {
        let set = AppSet::new(vec![app123(), app123()]).unwrap();
        assert_eq!(set.a(), 2);
        assert_eq!(set.total_stages(), 6);
        assert_eq!(set.n_max(), 3);
        assert_eq!(set.stage_indices().count(), 6);
    }
}
