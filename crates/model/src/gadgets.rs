//! NP-hardness reduction gadgets (Theorems 5–7, 9–11, 26, 27).
//!
//! The paper proves its NP-completeness entries by reductions from
//! 3-PARTITION and 2-PARTITION. This module implements:
//!
//! * the source problems themselves with small exact solvers (so tests can
//!   manufacture YES and NO instances and check them independently);
//! * the instance *encodings* used in the proofs, mapping a partition
//!   instance to a `(AppSet, Platform, target)` triple;
//! * the *intended mappings*: given a certificate of the source problem,
//!   build the mapping whose existence the proof claims.
//!
//! Exercising these gadgets end-to-end (YES instances produce feasible
//! mapping instances, NO instances provably infeasible via exhaustive
//! search) is how the repository certifies the NP-hard cells of Tables 1
//! and 2.

use crate::application::{AppSet, Application, Stage};
use crate::mapping::{Interval, Mapping};
use crate::platform::{Links, Platform, Processor};
use rand::prelude::*;
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

// ---------------------------------------------------------------------------
// Source problems
// ---------------------------------------------------------------------------

/// A 3-PARTITION instance: `3m` positive integers with `B/4 < a_i < B/2` and
/// `Σ a_i = m·B`; question: can they be split into `m` triples each summing
/// to `B`?
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ThreePartition {
    /// The target triple sum `B`.
    pub b: u64,
    /// The `3m` items.
    pub items: Vec<u64>,
}

impl ThreePartition {
    /// Number of triples `m`.
    pub fn m(&self) -> usize {
        self.items.len() / 3
    }

    /// Validate the structural side conditions (`B/4 < a_i < B/2`,
    /// `Σ = m·B`, `|items| = 3m`).
    pub fn is_well_formed(&self) -> bool {
        let m = self.m() as u64;
        self.items.len().is_multiple_of(3)
            && !self.items.is_empty()
            && self.items.iter().sum::<u64>() == m * self.b
            && self.items.iter().all(|&a| 4 * a > self.b && 4 * a < 2 * self.b)
    }

    /// Exact solver by backtracking; returns the triples as item-index
    /// triples, or `None`. Exponential — for gadget-sized instances only.
    pub fn solve(&self) -> Option<Vec<[usize; 3]>> {
        let n = self.items.len();
        if !n.is_multiple_of(3) || n == 0 {
            return None;
        }
        let mut used = vec![false; n];
        let mut triples = Vec::with_capacity(n / 3);
        if self.backtrack(&mut used, &mut triples) {
            Some(triples)
        } else {
            None
        }
    }

    fn backtrack(&self, used: &mut [bool], triples: &mut Vec<[usize; 3]>) -> bool {
        // Find the first unused item; it anchors the next triple, which
        // kills the symmetric permutations of complete triples.
        let first = match used.iter().position(|u| !u) {
            None => return true,
            Some(i) => i,
        };
        used[first] = true;
        let n = self.items.len();
        for j in (first + 1)..n {
            if used[j] || self.items[first] + self.items[j] >= self.b {
                continue;
            }
            used[j] = true;
            let need = self.b - self.items[first] - self.items[j];
            for k in (j + 1)..n {
                if !used[k] && self.items[k] == need {
                    used[k] = true;
                    triples.push([first, j, k]);
                    if self.backtrack(used, triples) {
                        return true;
                    }
                    triples.pop();
                    used[k] = false;
                }
            }
            used[j] = false;
        }
        used[first] = false;
        false
    }

    /// Manufacture a YES instance with `m` triples: each triple is
    /// `(B/4 + 1 + r, B/4 + 1 + r', B/2 - 2 - r - r')`-shaped around a base
    /// `B`, then globally shuffled. All side conditions hold by
    /// construction.
    pub fn yes_instance(m: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        // Pick B large enough that the open interval (B/4, B/2) has room.
        let b: u64 = 100;
        let mut items = Vec::with_capacity(3 * m);
        for _ in 0..m {
            // a1, a2 ∈ (B/4, B/2) with a3 = B - a1 - a2 also in range.
            // With B=100: a_i ∈ [26, 49]; choose a1, a2 ∈ [26, 37] so that
            // a3 = 100 - a1 - a2 ∈ [26, 48].
            let a1 = rng.gen_range(26..=37);
            let a2 = rng.gen_range(26..=37);
            let a3 = b - a1 - a2;
            items.extend_from_slice(&[a1, a2, a3]);
        }
        items.shuffle(&mut rng);
        let inst = ThreePartition { b, items };
        debug_assert!(inst.is_well_formed());
        inst
    }

    /// Manufacture a NO instance: take a YES instance and trade 1 unit
    /// between two items of *different* triples so the multiset can no
    /// longer be partitioned (verified by the exact solver; retries with
    /// fresh seeds until a genuine NO instance is found).
    pub fn no_instance(m: usize, seed: u64) -> Self {
        assert!(m >= 2, "a NO instance needs at least two triples");
        for attempt in 0..64 {
            let mut inst = Self::yes_instance(m, seed.wrapping_add(attempt));
            let k = inst.items.len();
            let mut rng = StdRng::seed_from_u64(seed ^ 0x9e3779b97f4a7c15 ^ attempt);
            let i = rng.gen_range(0..k);
            let j = (i + 1 + rng.gen_range(0..k - 1)) % k;
            inst.items[i] += 1;
            inst.items[j] -= 1;
            if inst.is_well_formed() && inst.solve().is_none() {
                return inst;
            }
        }
        panic!("could not manufacture a NO 3-partition instance");
    }
}

/// A 2-PARTITION instance: positive integers; question: is there a subset
/// summing to exactly half the total?
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TwoPartition {
    /// The items `a_1 … a_n`.
    pub items: Vec<u64>,
}

impl TwoPartition {
    /// Total sum `S`.
    pub fn total(&self) -> u64 {
        self.items.iter().sum()
    }

    /// Exact pseudo-polynomial subset-sum DP. Returns the indicator vector
    /// of one side of the partition, or `None`.
    pub fn solve(&self) -> Option<Vec<bool>> {
        let s = self.total();
        if !s.is_multiple_of(2) {
            return None;
        }
        let half = (s / 2) as usize;
        // reach[c] = Some(i) if sum c is reachable, with i the last item used.
        let mut reach: Vec<Option<usize>> = vec![None; half + 1];
        let mut from: Vec<usize> = vec![usize::MAX; half + 1];
        reach[0] = Some(usize::MAX);
        for (i, &a) in self.items.iter().enumerate() {
            let a = a as usize;
            if a > half {
                continue;
            }
            for c in (a..=half).rev() {
                if reach[c].is_none() && reach[c - a].is_some() && reach[c - a] != Some(i) {
                    reach[c] = Some(i);
                    from[c] = c - a;
                }
            }
        }
        reach[half]?;
        let mut side = vec![false; self.items.len()];
        let mut c = half;
        while c > 0 {
            let i = reach[c].expect("reachable");
            side[i] = true;
            c = from[c];
        }
        Some(side)
    }

    /// A YES instance: random items plus a balancing item.
    pub fn yes_instance(n: usize, seed: u64) -> Self {
        assert!(n >= 2);
        let mut rng = StdRng::seed_from_u64(seed);
        loop {
            let mut items: Vec<u64> = (0..n).map(|_| rng.gen_range(1..=20)).collect();
            let s: u64 = items.iter().sum();
            if s % 2 == 1 {
                items[0] += 1;
            }
            let inst = TwoPartition { items };
            if inst.solve().is_some() {
                return inst;
            }
        }
    }

    /// A NO instance: odd total guarantees infeasibility.
    pub fn no_instance(n: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut items: Vec<u64> = (0..n).map(|_| rng.gen_range(1..=20)).collect();
        if items.iter().sum::<u64>() % 2 == 0 {
            items[0] += 1;
        }
        TwoPartition { items }
    }
}

// ---------------------------------------------------------------------------
// Theorem 5 encoding — period / interval / heterogeneous uni-modal procs
// ---------------------------------------------------------------------------

/// The Theorem 5 instance: `m` identical pipelines of `B` unit-work stages
/// without communication, `3m` uni-modal processors with speeds `a_j`;
/// target global period 1.
#[derive(Debug, Clone)]
pub struct Theorem5Gadget {
    /// The generated applications (one per triple).
    pub apps: AppSet,
    /// The generated platform (one processor per item).
    pub platform: Platform,
    /// The period target (always 1).
    pub target_period: f64,
}

/// Encode a 3-PARTITION instance per the Theorem 5 proof.
pub fn theorem5_encode(inst: &ThreePartition) -> Theorem5Gadget {
    let m = inst.m();
    let b = inst.b as usize;
    let app = Application::named(
        "thm5-pipeline",
        0.0,
        vec![Stage::new(1.0, 0.0); b],
        1.0,
    )
    .expect("valid");
    let apps = AppSet::new(vec![app; m]).expect("m >= 1");
    let procs = inst
        .items
        .iter()
        .map(|&a| Processor::uni_modal(a as f64).expect("positive speed"))
        .collect();
    let platform = Platform::new(procs, Links::Uniform(1.0)).expect("valid");
    Theorem5Gadget { apps, platform, target_period: 1.0 }
}

/// Given a 3-PARTITION certificate, build the interval mapping the Theorem 5
/// proof describes: for triple `I_j = {a'_1, a'_2, a'_3}` of application
/// `j`, the first `a'_1` stages go to the processor of speed `a'_1`, etc.
pub fn theorem5_mapping(inst: &ThreePartition, triples: &[[usize; 3]]) -> Mapping {
    let mut mapping = Mapping::new();
    for (app, triple) in triples.iter().enumerate() {
        let mut first = 0usize;
        for &item in triple {
            let len = inst.items[item] as usize;
            mapping.push(Interval::new(app, first, first + len - 1), item, 0);
            first += len;
        }
    }
    mapping
}

// ---------------------------------------------------------------------------
// Theorem 9 encoding — latency / one-to-one / heterogeneous uni-modal procs
// ---------------------------------------------------------------------------

/// The Theorem 9 instance: `m` identical 3-stage unit-work pipelines without
/// communication, `3m` uni-modal processors with speeds `1/a_j`; target
/// global latency `B`.
#[derive(Debug, Clone)]
pub struct Theorem9Gadget {
    /// The generated applications.
    pub apps: AppSet,
    /// The generated platform.
    pub platform: Platform,
    /// The latency target (`B`).
    pub target_latency: f64,
}

/// Encode a 3-PARTITION instance per the Theorem 9 proof.
pub fn theorem9_encode(inst: &ThreePartition) -> Theorem9Gadget {
    let m = inst.m();
    let app = Application::named(
        "thm9-pipeline",
        0.0,
        vec![Stage::new(1.0, 0.0); 3],
        1.0,
    )
    .expect("valid");
    let apps = AppSet::new(vec![app; m]).expect("m >= 1");
    let procs = inst
        .items
        .iter()
        .map(|&a| Processor::uni_modal(1.0 / a as f64).expect("positive speed"))
        .collect();
    let platform = Platform::new(procs, Links::Uniform(1.0)).expect("valid");
    Theorem9Gadget { apps, platform, target_latency: inst.b as f64 }
}

/// Given a certificate, build the one-to-one mapping of the Theorem 9 proof:
/// stage `i` of application `j` goes to the processor of speed `1/a'_{i,j}`.
pub fn theorem9_mapping(triples: &[[usize; 3]]) -> Mapping {
    let mut mapping = Mapping::new();
    for (app, triple) in triples.iter().enumerate() {
        for (stage, &item) in triple.iter().enumerate() {
            mapping.push(Interval::new(app, stage, stage), item, 0);
        }
    }
    mapping
}

// ---------------------------------------------------------------------------
// Theorem 26 encoding — tri-criteria / one-to-one / multi-modal, fully hom.
// ---------------------------------------------------------------------------

/// The Theorem 26 instance: a single `n`-stage application without
/// communication on `n` identical processors with `2n` modes
/// (`s_{2i-1} = K^i`, `s_{2i} = K^i + a_i·X / K^{i(α-1)}`), stage works
/// `w_i = K^{i(α+1)}`, and thresholds
/// `E° = E* + αX(S/2 + 1/2)`, `L° = L* − X(S/2 − 1/2)`, `T° = L°`.
#[derive(Debug, Clone)]
pub struct Theorem26Gadget {
    /// The single application.
    pub apps: AppSet,
    /// The platform (n identical multi-modal processors).
    pub platform: Platform,
    /// Energy bound `E°`.
    pub target_energy: f64,
    /// Latency bound `L°`.
    pub target_latency: f64,
    /// Period bound `T°` (= `L°`).
    pub target_period: f64,
    /// The scale base `K` chosen for the instance.
    pub k: f64,
    /// The perturbation scale `X` chosen for the instance.
    pub x: f64,
}

/// Encode a 2-PARTITION instance per the Theorem 26 proof, with `α = 2`.
///
/// `K` and `X` are selected numerically so that the proof's separation
/// inequalities hold for the concrete items (the proof only needs *some*
/// valid pair; we take the smallest power of two `K` and largest power of
/// two `X ≤ 1/4` that satisfy them). Practical for `n ≤ 5` before `K^{iα}`
/// exhausts `f64` precision.
pub fn theorem26_encode(inst: &TwoPartition) -> Theorem26Gadget {
    let alpha = 2.0;
    let n = inst.items.len();
    assert!(n >= 2, "gadget needs at least two items");
    let s: f64 = inst.total() as f64;

    // Numerically select K (doubling) so that for all j ≥ 2:
    //   K^{jα}   > Σ_{i<j} K^{iα} + α (S/2 − 1/2)
    //   K^{jα+1} > Σ_{i≤j} K^{iα} + (K^{α+1}/K^{j-1} a_{j-1} + 1 − S/2)
    let mut k = 2.0_f64;
    let k_ok = |k: f64| -> bool {
        for j in 2..=n {
            let lhs1 = k.powf(j as f64 * alpha);
            let rhs1: f64 = (1..j).map(|i| k.powf(i as f64 * alpha)).sum::<f64>()
                + alpha * (s / 2.0 - 0.5);
            if lhs1 <= rhs1 {
                return false;
            }
            let lhs2 = k.powf(j as f64 * alpha + 1.0);
            let rhs2: f64 = (1..=j).map(|i| k.powf(i as f64 * alpha)).sum::<f64>()
                + (k.powf(alpha + 1.0) / k.powf(j as f64 - 1.0)) * inst.items[j - 2] as f64
                + 1.0
                - s / 2.0;
            if lhs2 <= rhs2 {
                return false;
            }
        }
        true
    };
    while !k_ok(k) {
        k *= 2.0;
        assert!(k < 1e6, "failed to select K for the Theorem 26 gadget");
    }

    // Numerically select X ≤ 1/4 (halving) so that the first-order error
    // terms f_i^E, f_i^L of the proof stay below X·α/2n and X/2n.
    let mut x = 0.25_f64;
    let x_ok = |x: f64| -> bool {
        for i in 1..=n {
            let ki = k.powf(i as f64);
            let ai = inst.items[i - 1] as f64;
            let s_lo = ki;
            let s_hi = ki + ai * x / k.powf(i as f64 * (alpha - 1.0));
            let wi = k.powf(i as f64 * (alpha + 1.0));
            // f^E_i = (s_hi^α − s_lo^α) − α a_i X
            let fe = (s_hi.powf(alpha) - s_lo.powf(alpha)) - alpha * ai * x;
            // f^L_i = a_i X − (w_i/s_lo − w_i/s_hi)
            let fl = ai * x - (wi / s_lo - wi / s_hi);
            if fe.abs() >= x * alpha / (2.0 * n as f64) || fl.abs() >= x / (2.0 * n as f64) {
                return false;
            }
        }
        true
    };
    while !x_ok(x) {
        x /= 2.0;
        assert!(x > 1e-12, "failed to select X for the Theorem 26 gadget");
    }

    // Build speeds and stage works.
    let mut speeds = Vec::with_capacity(2 * n);
    for i in 1..=n {
        let ki = k.powf(i as f64);
        speeds.push(ki);
        speeds.push(ki + inst.items[i - 1] as f64 * x / k.powf(i as f64 * (alpha - 1.0)));
    }
    let stages: Vec<Stage> = (1..=n)
        .map(|i| Stage::new(k.powf(i as f64 * (alpha + 1.0)), 0.0))
        .collect();
    let app = Application::named("thm26-pipeline", 0.0, stages, 1.0).expect("valid");
    let apps = AppSet::single(app);
    let proto = Processor::new(speeds).expect("positive speeds");
    let platform = Platform::new(vec![proto; n], Links::Uniform(1.0)).expect("valid");

    // E* = L* = Σ K^{iα}; thresholds per the proof.
    let e_star: f64 = (1..=n).map(|i| k.powf(i as f64 * alpha)).sum();
    let l_star = e_star;
    let target_energy = e_star + x * alpha * (s / 2.0 + 0.5);
    let target_latency = l_star - x * (s / 2.0 - 0.5);
    Theorem26Gadget {
        apps,
        platform,
        target_energy,
        target_latency,
        target_period: target_latency,
        k,
        x,
    }
}

/// Given a 2-PARTITION certificate (indicator of the subset `I`), build the
/// one-to-one mapping of the Theorem 26 proof: stage `i` runs on processor
/// `i` at speed `s_{2i}` if `i ∈ I`, else `s_{2i-1}`.
pub fn theorem26_mapping(side: &[bool]) -> Mapping {
    let mut mapping = Mapping::new();
    for (i, &in_subset) in side.iter().enumerate() {
        // Mode indices: speeds are sorted ascending and pairs (K^i, K^i+ε)
        // are consecutive, so stage i uses mode 2i or 2i+1.
        let mode = if in_subset { 2 * i + 1 } else { 2 * i };
        mapping.push(Interval::new(0, i, i), i, mode);
    }
    mapping
}


// ---------------------------------------------------------------------------
// Theorem 27 encoding — tri-criteria / interval / multi-modal, fully hom.
// ---------------------------------------------------------------------------

/// The Theorem 27 instance: the Theorem 26 gadget with *big separator
/// stages* interleaved so that interval mappings are forced back into the
/// one-to-one shape: a `2n−1`-stage application (`w_{2i−1} = K^{i(α+1)}`,
/// `w_{2i} = K^{(n+1)(α+1)}`) on `2n−1` identical processors whose mode set
/// gains a top speed `K^{n+1}`. Each big stage saturates the period bound
/// `T° = K^{(n+1)α}` exactly at the top mode, so no interval may merge a
/// big stage with anything else.
#[derive(Debug, Clone)]
pub struct Theorem27Gadget {
    /// The single application (2n−1 stages).
    pub apps: AppSet,
    /// The platform (2n−1 identical multi-modal processors).
    pub platform: Platform,
    /// Energy bound `E° = (n−1)K^{(n+1)α} + E* + αX(S/2 + 1/2)`.
    pub target_energy: f64,
    /// Latency bound `L° = (n−1)K^{(n+1)α} + L* − X(S/2 − 1/2)`.
    pub target_latency: f64,
    /// Period bound `T° = K^{(n+1)α}`.
    pub target_period: f64,
    /// The scale base `K`.
    pub k: f64,
    /// The perturbation scale `X`.
    pub x: f64,
}

/// Encode a 2-PARTITION instance per the Theorem 27 proof (`α = 2`).
/// Practical for `n ≤ 3` before `K^{(n+1)(α+1)}` exhausts `f64` precision.
pub fn theorem27_encode(inst: &TwoPartition) -> Theorem27Gadget {
    let alpha = 2.0;
    let n = inst.items.len();
    assert!(n >= 2, "gadget needs at least two items");
    let s: f64 = inst.total() as f64;

    // K selection: the Theorem 26 inequalities extended to j = n+1 so that
    // a single big-mode processor already busts the energy slack.
    let mut k = 2.0_f64;
    let k_ok = |k: f64| -> bool {
        for j in 2..=(n + 1) {
            let lhs1 = k.powf(j as f64 * alpha);
            let rhs1: f64 = (1..j).map(|i| k.powf(i as f64 * alpha)).sum::<f64>()
                + alpha * (s / 2.0 + 0.5);
            if lhs1 <= rhs1 {
                return false;
            }
        }
        true
    };
    while !k_ok(k) {
        k *= 2.0;
        assert!(k < 1e6, "failed to select K for the Theorem 27 gadget");
    }

    // X selection: same first-order error bounds as Theorem 26.
    let mut x = 0.25_f64;
    let x_ok = |x: f64| -> bool {
        for i in 1..=n {
            let ki = k.powf(i as f64);
            let ai = inst.items[i - 1] as f64;
            let s_lo = ki;
            let s_hi = ki + ai * x / k.powf(i as f64 * (alpha - 1.0));
            let wi = k.powf(i as f64 * (alpha + 1.0));
            let fe = (s_hi.powf(alpha) - s_lo.powf(alpha)) - alpha * ai * x;
            let fl = ai * x - (wi / s_lo - wi / s_hi);
            if fe.abs() >= x * alpha / (2.0 * n as f64) || fl.abs() >= x / (2.0 * n as f64) {
                return false;
            }
        }
        true
    };
    while !x_ok(x) {
        x /= 2.0;
        assert!(x > 1e-12, "failed to select X for the Theorem 27 gadget");
    }

    // 2n−1 stages: small stage i at positions 2(i−1), big stages between.
    let big_work = k.powf((n + 1) as f64 * (alpha + 1.0));
    let mut stages = Vec::with_capacity(2 * n - 1);
    for i in 1..=n {
        stages.push(Stage::new(k.powf(i as f64 * (alpha + 1.0)), 0.0));
        if i < n {
            stages.push(Stage::new(big_work, 0.0));
        }
    }
    let app = Application::named("thm27-pipeline", 0.0, stages, 1.0).expect("valid");
    let apps = AppSet::single(app);

    // Modes: the Theorem 26 pairs plus the big speed K^{n+1}.
    let mut speeds = Vec::with_capacity(2 * n + 1);
    for i in 1..=n {
        let ki = k.powf(i as f64);
        speeds.push(ki);
        speeds.push(ki + inst.items[i - 1] as f64 * x / k.powf(i as f64 * (alpha - 1.0)));
    }
    speeds.push(k.powf((n + 1) as f64));
    let proto = Processor::new(speeds).expect("positive speeds");
    let platform =
        Platform::new(vec![proto; 2 * n - 1], Links::Uniform(1.0)).expect("valid");

    let e_star: f64 = (1..=n).map(|i| k.powf(i as f64 * alpha)).sum();
    let big_energy = (n as f64 - 1.0) * k.powf((n + 1) as f64 * alpha);
    let target_energy = big_energy + e_star + x * alpha * (s / 2.0 + 0.5);
    let target_latency = big_energy + e_star - x * (s / 2.0 - 0.5);
    let target_period = k.powf((n + 1) as f64 * alpha);
    Theorem27Gadget {
        apps,
        platform,
        target_energy,
        target_latency,
        target_period,
        k,
        x,
    }
}

/// The intended Theorem 27 mapping for a 2-PARTITION certificate: small
/// stage `i` (position `2(i−1)`) runs mode `2(i−1)` or `2(i−1)+1` per the
/// certificate; big stages run the top mode (index `2n`).
pub fn theorem27_mapping(side: &[bool]) -> Mapping {
    let n = side.len();
    let mut mapping = Mapping::new();
    let mut proc = 0usize;
    for (i, &in_subset) in side.iter().enumerate() {
        let mode = if in_subset { 2 * i + 1 } else { 2 * i };
        mapping.push(Interval::new(0, 2 * i, 2 * i), proc, mode);
        proc += 1;
        if i + 1 < n {
            mapping.push(Interval::new(0, 2 * i + 1, 2 * i + 1), proc, 2 * n);
            proc += 1;
        }
    }
    mapping
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn three_partition_yes_solves() {
        for seed in 0..5 {
            let inst = ThreePartition::yes_instance(3, seed);
            assert!(inst.is_well_formed());
            let triples = inst.solve().expect("yes instance must solve");
            assert_eq!(triples.len(), 3);
            for t in &triples {
                assert_eq!(t.iter().map(|&i| inst.items[i]).sum::<u64>(), inst.b);
            }
        }
    }

    #[test]
    fn three_partition_no_has_no_solution() {
        for seed in 0..3 {
            let inst = ThreePartition::no_instance(2, seed);
            assert!(inst.solve().is_none());
        }
    }

    #[test]
    fn two_partition_solver_roundtrip() {
        let inst = TwoPartition { items: vec![3, 1, 1, 2, 2, 1] };
        let side = inst.solve().expect("10/2 = 5 reachable");
        let sum: u64 = side.iter().zip(&inst.items).filter(|(s, _)| **s).map(|(_, a)| a).sum();
        assert_eq!(sum, 5);
        assert!(TwoPartition { items: vec![1, 2, 4] }.solve().is_none());
        assert!(TwoPartition { items: vec![1, 1, 1] }.solve().is_none());
    }

    #[test]
    fn two_partition_factories() {
        for seed in 0..5 {
            assert!(TwoPartition::yes_instance(5, seed).solve().is_some());
            assert!(TwoPartition::no_instance(5, seed).solve().is_none());
        }
    }

    #[test]
    fn theorem5_gadget_shapes() {
        let inst = ThreePartition::yes_instance(2, 0);
        let g = theorem5_encode(&inst);
        assert_eq!(g.apps.a(), 2);
        assert_eq!(g.apps.apps[0].n(), inst.b as usize);
        assert_eq!(g.platform.p(), 6);
        let triples = inst.solve().unwrap();
        let m = theorem5_mapping(&inst, &triples);
        m.validate(&g.apps, &g.platform).expect("intended mapping is structurally valid");
    }

    #[test]
    fn theorem9_gadget_shapes() {
        let inst = ThreePartition::yes_instance(2, 1);
        let g = theorem9_encode(&inst);
        assert_eq!(g.apps.a(), 2);
        assert_eq!(g.apps.apps[0].n(), 3);
        assert_eq!(g.platform.p(), 6);
        let triples = inst.solve().unwrap();
        let m = theorem9_mapping(&triples);
        m.validate(&g.apps, &g.platform).expect("intended mapping is structurally valid");
        assert!(m.is_one_to_one());
    }

    #[test]
    fn theorem27_gadget_builds() {
        let inst = TwoPartition::yes_instance(2, 3);
        let g = theorem27_encode(&inst);
        assert_eq!(g.apps.apps[0].n(), 3);
        assert_eq!(g.platform.p(), 3);
        assert_eq!(g.platform.procs[0].modes(), 5);
        let side = inst.solve().unwrap();
        let m = theorem27_mapping(&side);
        m.validate(&g.apps, &g.platform).expect("intended mapping valid");
        // Big stage saturates the period bound exactly at top mode.
        let ev = crate::eval::Evaluator::new(&g.apps, &g.platform);
        let t = ev.period(&m, crate::eval::CommModel::Overlap);
        assert!((t - g.target_period).abs() < 1e-6 * g.target_period);
    }

    #[test]
    fn theorem26_gadget_builds() {
        let inst = TwoPartition::yes_instance(3, 7);
        let g = theorem26_encode(&inst);
        assert_eq!(g.apps.apps[0].n(), 3);
        assert_eq!(g.platform.p(), 3);
        assert_eq!(g.platform.procs[0].modes(), 6);
        assert!(g.k >= 2.0);
        assert!(g.x <= 0.25);
        let side = inst.solve().unwrap();
        let m = theorem26_mapping(&side);
        m.validate(&g.apps, &g.platform).expect("intended mapping valid");
    }
}
