//! The problem IR: a typed, serde-round-trippable description of every
//! optimization problem in the paper's catalogue, plus the typed outcome
//! vocabulary the router and the batch engine speak.
//!
//! The paper enumerates ~20 distinct problems (mono/bi/tri-criteria ×
//! one-to-one/interval/general/replicated × two communication models).
//! After the solver crates grew one differently-shaped free function per
//! problem, this module gives them a single *name*: a [`ProblemSpec`] says
//! **what** to optimize ([`Objective`]), **under which** bounds on the
//! other criteria ([`crate::objective::Thresholds`]), **with which**
//! mapping rule ([`Strategy`]) and communication model, and **how** the
//! solver may fall back when no polynomial algorithm applies
//! ([`SolverHints`]). A [`SolveOutcome`] is the typed answer: a witness
//! solution, a Pareto front, a per-spec infeasibility, or an
//! unsupported-combination report with a reason — never a panic.
//!
//! Everything round-trips through JSON bit-for-bit (f64 values are printed
//! in shortest round-trippable form), so specs can be archived, sharded,
//! queued and replayed: [`SolveRequest`] bundles a spec with its instance
//! for exactly that purpose, in pretty (single request) or compact
//! (JSONL batch) form.

use crate::application::AppSet;
use crate::eval::CommModel;
use crate::io::serde_json_error::{self, Error as JsonError};
use crate::mapping::Mapping;
use crate::objective::Thresholds;
use crate::platform::Platform;
use crate::replication::ReplicatedMapping;
use crate::sharing::GeneralMapping;
use serde::{Deserialize, Serialize};

/// Current spec schema version; bumped on incompatible changes.
pub const SPEC_VERSION: u32 = 1;

/// What a [`ProblemSpec`] optimizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Objective {
    /// Minimize the global weighted period `max_a W_a·T_a`.
    Period,
    /// Minimize the global weighted latency `max_a W_a·L_a`.
    Latency,
    /// Minimize the total energy of the enrolled processors.
    Energy,
    /// Extract the full period/energy trade-off front.
    PeriodEnergyFront,
    /// Extract the full period/latency trade-off front.
    PeriodLatencyFront,
}

impl Objective {
    /// Human-readable name (used in reasons and reports).
    pub fn name(&self) -> &'static str {
        match self {
            Objective::Period => "period",
            Objective::Latency => "latency",
            Objective::Energy => "energy",
            Objective::PeriodEnergyFront => "period/energy front",
            Objective::PeriodLatencyFront => "period/latency front",
        }
    }
}

/// Which mapping rule the solver may use (Section 3.3 plus the Section 6
/// extensions).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Strategy {
    /// Each stage on a distinct processor.
    OneToOne,
    /// Each processor holds an interval of consecutive stages.
    Interval,
    /// Interval mappings whose intervals may be replicated over several
    /// processors (Section 6 extension).
    Replicated,
    /// General mappings with processor sharing (Section 6 extension).
    General,
}

impl Strategy {
    /// Human-readable name (used in reasons and reports).
    pub fn name(&self) -> &'static str {
        match self {
            Strategy::OneToOne => "one-to-one",
            Strategy::Interval => "interval",
            Strategy::Replicated => "replicated",
            Strategy::General => "general",
        }
    }
}

/// Solver selection hints: which fallbacks the router may use when no
/// polynomial algorithm matches the spec, and tuning knobs for the ones
/// that take parameters. All default to the most conservative choice
/// (polynomial solvers only).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SolverHints {
    /// Allow exponential exact baselines (`exact_optimize`, the
    /// tri-criteria branch-and-bound, the general-mapping enumeration) on
    /// combinations with no polynomial solver. Small instances only.
    #[serde(default)]
    pub exact_fallback: bool,
    /// Allow polynomial heuristics (LPT packing, the one-to-one latency
    /// greedy, local search) on combinations with no polynomial exact
    /// solver. The outcome is then feasible but not certified optimal.
    #[serde(default)]
    pub heuristic_fallback: bool,
    /// Worker threads for Pareto sweeps (`None` = one per core).
    #[serde(default)]
    pub sweep_threads: Option<usize>,
    /// Iteration budget for the local-search heuristic.
    #[serde(default)]
    pub local_search_iterations: Option<usize>,
    /// RNG seed for randomized heuristics (deterministic runs).
    #[serde(default)]
    pub seed: Option<u64>,
}

impl Default for SolverHints {
    /// Polynomial solvers only, default sweep parallelism.
    fn default() -> Self {
        SolverHints {
            exact_fallback: false,
            heuristic_fallback: false,
            sweep_threads: None,
            local_search_iterations: None,
            seed: None,
        }
    }
}

/// A fully-specified optimization problem over some instance: the typed
/// front door to every solver in the workspace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProblemSpec {
    /// Spec schema version (forward compatibility checks).
    pub version: u32,
    /// The optimized criterion (or requested front).
    pub objective: Objective,
    /// The mapping rule.
    pub strategy: Strategy,
    /// The communication model (Eqs. 3 / 4).
    pub comm: CommModel,
    /// Bounds on the criteria *not* being optimized (Section 5 thresholds).
    #[serde(default)]
    pub constraints: Thresholds,
    /// Fallback permissions and tuning knobs.
    #[serde(default)]
    pub hints: SolverHints,
}

impl ProblemSpec {
    /// A fresh unconstrained spec at the current schema version.
    pub fn new(objective: Objective, strategy: Strategy, comm: CommModel) -> Self {
        ProblemSpec {
            version: SPEC_VERSION,
            objective,
            strategy,
            comm,
            constraints: Thresholds::none(),
            hints: SolverHints::default(),
        }
    }

    /// Attach per-application period bounds.
    pub fn with_period_bounds(mut self, bounds: Vec<f64>) -> Self {
        self.constraints.period = Some(bounds);
        self
    }

    /// Attach per-application latency bounds.
    pub fn with_latency_bounds(mut self, bounds: Vec<f64>) -> Self {
        self.constraints.latency = Some(bounds);
        self
    }

    /// Attach a global energy budget.
    pub fn with_energy_budget(mut self, budget: f64) -> Self {
        self.constraints.energy = Some(budget);
        self
    }

    /// Replace the hints.
    pub fn with_hints(mut self, hints: SolverHints) -> Self {
        self.hints = hints;
        self
    }

    /// Structural validation against an instance: schema version, bound
    /// vector lengths, NaN/non-positive bounds, and objective/constraint
    /// coherence (the optimized criterion must not also be bounded; fronts
    /// take no constraints). Returns the first problem found as a
    /// human-readable reason — the router turns it into
    /// [`SolveOutcome::Unsupported`] instead of panicking.
    pub fn validate(&self, apps: &AppSet) -> Result<(), String> {
        if self.version != SPEC_VERSION {
            return Err(format!(
                "unsupported spec version {} (expected {SPEC_VERSION})",
                self.version
            ));
        }
        let a = apps.a();
        let check_bounds = |name: &str, bounds: &Option<Vec<f64>>| -> Result<(), String> {
            if let Some(bs) = bounds {
                if bs.len() != a {
                    return Err(format!(
                        "{name} bounds have {} entries but the instance has {a} applications",
                        bs.len()
                    ));
                }
                for (i, &b) in bs.iter().enumerate() {
                    if b.is_nan() || b <= 0.0 {
                        return Err(format!("{name} bound {b} for application {i} is not positive"));
                    }
                }
            }
            Ok(())
        };
        check_bounds("period", &self.constraints.period)?;
        check_bounds("latency", &self.constraints.latency)?;
        if let Some(e) = self.constraints.energy {
            if e.is_nan() || e <= 0.0 {
                return Err(format!("energy budget {e} is not positive"));
            }
        }
        let bounded = |o: Objective| match o {
            Objective::Period => self.constraints.period.is_some(),
            Objective::Latency => self.constraints.latency.is_some(),
            Objective::Energy => self.constraints.energy.is_some(),
            _ => false,
        };
        match self.objective {
            Objective::Period | Objective::Latency | Objective::Energy => {
                if bounded(self.objective) {
                    return Err(format!(
                        "the optimized criterion ({}) must not also be bounded",
                        self.objective.name()
                    ));
                }
            }
            Objective::PeriodEnergyFront | Objective::PeriodLatencyFront => {
                if self.constraints.period.is_some()
                    || self.constraints.latency.is_some()
                    || self.constraints.energy.is_some()
                {
                    return Err(format!(
                        "{} extraction takes no extra constraints",
                        self.objective.name()
                    ));
                }
            }
        }
        Ok(())
    }

    /// Serialize to pretty JSON.
    pub fn to_json(&self) -> Result<String, JsonError> {
        serde_json_error::to_string_pretty(self)
    }

    /// Deserialize from JSON (no instance at hand: structural parse only).
    pub fn from_json(json: &str) -> Result<Self, JsonError> {
        serde_json_error::from_str(json)
    }
}

/// A mapping of any strategy, ready for serialization.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SolvedMapping {
    /// A plain one-to-one or interval mapping.
    Plain(Mapping),
    /// A replicated interval mapping.
    Replicated(ReplicatedMapping),
    /// A general (processor-sharing) mapping.
    General(GeneralMapping),
}

impl SolvedMapping {
    /// The plain mapping, when this is one.
    pub fn as_plain(&self) -> Option<&Mapping> {
        match self {
            SolvedMapping::Plain(m) => Some(m),
            _ => None,
        }
    }
}

/// A witness solution: the achieved objective value plus the mapping.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SolvedPoint {
    /// The optimized objective value achieved by `mapping`.
    pub objective: f64,
    /// The witness mapping.
    pub mapping: SolvedMapping,
}

/// One point of a returned trade-off front.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FrontEntry {
    /// The primary-criterion value achieved by the witness mapping.
    pub achieved: f64,
    /// The minimized secondary objective at this point.
    pub objective: f64,
    /// The witness mapping.
    pub mapping: SolvedMapping,
}

/// The typed answer to a [`ProblemSpec`]: exactly one of a solution, a
/// front, a per-spec infeasibility or an unsupported-combination report.
/// Batch runs report one outcome per item — a bad spec never aborts its
/// batch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SolveOutcome {
    /// The optimum (or, under a heuristic fallback, a feasible witness).
    Solution(SolvedPoint),
    /// The requested Pareto front, sorted by increasing achieved value.
    Front(Vec<FrontEntry>),
    /// The instance admits no mapping satisfying the spec.
    Infeasible {
        /// What was found infeasible.
        reason: String,
    },
    /// No solver covers this spec/platform combination (with the given
    /// fallback permissions), or the spec itself is malformed.
    Unsupported {
        /// Why the combination is not covered.
        reason: String,
    },
}

impl SolveOutcome {
    /// The solution's objective value, when the outcome is one.
    pub fn objective(&self) -> Option<f64> {
        match self {
            SolveOutcome::Solution(s) => Some(s.objective),
            _ => None,
        }
    }

    /// True for [`SolveOutcome::Solution`] and [`SolveOutcome::Front`].
    pub fn is_success(&self) -> bool {
        matches!(self, SolveOutcome::Solution(_) | SolveOutcome::Front(_))
    }

    /// Short tag for logs and reports.
    pub fn kind(&self) -> &'static str {
        match self {
            SolveOutcome::Solution(_) => "solution",
            SolveOutcome::Front(_) => "front",
            SolveOutcome::Infeasible { .. } => "infeasible",
            SolveOutcome::Unsupported { .. } => "unsupported",
        }
    }

    /// Serialize to pretty JSON.
    pub fn to_json(&self) -> Result<String, JsonError> {
        serde_json_error::to_string_pretty(self)
    }

    /// Serialize to compact single-line JSON (JSONL-friendly).
    pub fn to_json_compact(&self) -> Result<String, JsonError> {
        serde_json_error::to_string(self)
    }

    /// Deserialize from JSON.
    pub fn from_json(json: &str) -> Result<Self, JsonError> {
        serde_json_error::from_str(json)
    }
}

/// A self-contained solve request: instance + problem, the unit of work of
/// the batch engine, of the `solve`/`batch` CLI subcommands, and of the
/// long-lived serve loop.
///
/// The serving envelope (`id`/`tenant`/`deadline_ms`) is optional and
/// ignored by the one-shot paths: `id` is echoed back so a streaming
/// client can correlate replies, `tenant` keys the server's per-tenant
/// token-bucket fairness, and `deadline_ms` is the soft deadline budget
/// (milliseconds from admission) the server enforces at dequeue and at
/// router-plan time. None of the three participates in the structural
/// digests — two requests for the same work share cache entries and
/// quarantine state regardless of who sent them or how urgently.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SolveRequest {
    /// Request schema version.
    pub version: u32,
    /// Free-form description (provenance, purpose).
    #[serde(default)]
    pub description: String,
    /// Client-assigned correlation id, echoed verbatim in serve replies.
    #[serde(default)]
    pub id: Option<String>,
    /// Fairness key for the serve admission controller (absent = the
    /// anonymous tenant).
    #[serde(default)]
    pub tenant: Option<String>,
    /// Soft deadline budget in milliseconds from admission (absent = no
    /// deadline).
    #[serde(default)]
    pub deadline_ms: Option<u64>,
    /// The concurrent applications.
    pub apps: AppSet,
    /// The target platform.
    pub platform: Platform,
    /// The problem to solve on them.
    pub problem: ProblemSpec,
}

impl SolveRequest {
    /// Bundle a request.
    pub fn new(
        description: impl Into<String>,
        apps: AppSet,
        platform: Platform,
        problem: ProblemSpec,
    ) -> Self {
        SolveRequest {
            version: SPEC_VERSION,
            description: description.into(),
            id: None,
            tenant: None,
            deadline_ms: None,
            apps,
            platform,
            problem,
        }
    }

    /// Attach a correlation id (echoed in serve replies).
    pub fn with_id(mut self, id: impl Into<String>) -> Self {
        self.id = Some(id.into());
        self
    }

    /// Attach a tenant fairness key.
    pub fn with_tenant(mut self, tenant: impl Into<String>) -> Self {
        self.tenant = Some(tenant.into());
        self
    }

    /// Attach a soft deadline budget (milliseconds from admission).
    pub fn with_deadline_ms(mut self, deadline_ms: u64) -> Self {
        self.deadline_ms = Some(deadline_ms);
        self
    }

    /// Serialize to pretty JSON.
    pub fn to_json(&self) -> Result<String, JsonError> {
        serde_json_error::to_string_pretty(self)
    }

    /// Serialize to compact single-line JSON (one JSONL batch line).
    pub fn to_json_compact(&self) -> Result<String, JsonError> {
        serde_json_error::to_string(self)
    }

    /// Deserialize from JSON, checking the schema version.
    pub fn from_json(json: &str) -> Result<Self, JsonError> {
        let req: SolveRequest = serde_json_error::from_str(json)?;
        if req.version != SPEC_VERSION {
            return Err(JsonError(format!(
                "unsupported request version {} (expected {SPEC_VERSION})",
                req.version
            )));
        }
        Ok(req)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::section2_example;
    use crate::mapping::Interval;

    fn spec() -> ProblemSpec {
        ProblemSpec::new(Objective::Energy, Strategy::Interval, CommModel::Overlap)
            .with_period_bounds(vec![2.0, 2.5])
    }

    #[test]
    fn spec_roundtrips_through_json() {
        let s = spec();
        let json = s.to_json().unwrap();
        assert_eq!(ProblemSpec::from_json(&json).unwrap(), s);
    }

    #[test]
    fn outcome_roundtrips_through_json() {
        let mapping = Mapping::new().with(Interval::new(0, 0, 2), 0, 1);
        let out = SolveOutcome::Solution(SolvedPoint {
            objective: 46.25,
            mapping: SolvedMapping::Plain(mapping),
        });
        let json = out.to_json().unwrap();
        assert_eq!(SolveOutcome::from_json(&json).unwrap(), out);
        let compact = out.to_json_compact().unwrap();
        assert!(!compact.contains('\n'));
        assert_eq!(SolveOutcome::from_json(&compact).unwrap(), out);
    }

    #[test]
    fn request_roundtrips_and_checks_version() {
        let (apps, platform) = section2_example();
        let req = SolveRequest::new("s2", apps, platform, spec());
        let json = req.to_json().unwrap();
        assert_eq!(SolveRequest::from_json(&json).unwrap(), req);
        let mut bad = req.clone();
        bad.version = 99;
        assert!(SolveRequest::from_json(&bad.to_json().unwrap()).is_err());
    }

    #[test]
    fn envelope_fields_roundtrip_and_default() {
        let (apps, platform) = section2_example();
        let req = SolveRequest::new("s2", apps, platform, spec())
            .with_id("req-42")
            .with_tenant("team-a")
            .with_deadline_ms(250);
        let json = req.to_json().unwrap();
        let back = SolveRequest::from_json(&json).unwrap();
        assert_eq!(back, req);
        assert_eq!(back.id.as_deref(), Some("req-42"));
        assert_eq!(back.tenant.as_deref(), Some("team-a"));
        assert_eq!(back.deadline_ms, Some(250));
        // Pre-envelope requests (no id/tenant/deadline keys) still parse.
        let compact = SolveRequest::new("bare", back.apps.clone(), back.platform.clone(), spec())
            .to_json_compact()
            .unwrap();
        let stripped = compact
            .replace("\"id\":null,", "")
            .replace("\"tenant\":null,", "")
            .replace("\"deadline_ms\":null,", "");
        let bare = SolveRequest::from_json(&stripped).unwrap();
        assert_eq!(bare.id, None);
        assert_eq!(bare.tenant, None);
        assert_eq!(bare.deadline_ms, None);
    }

    #[test]
    fn validation_catches_malformed_specs() {
        let (apps, _) = section2_example();
        assert!(spec().validate(&apps).is_ok());
        // Wrong bound count.
        let s = ProblemSpec::new(Objective::Energy, Strategy::Interval, CommModel::Overlap)
            .with_period_bounds(vec![2.0]);
        assert!(s.validate(&apps).is_err());
        // Objective also bounded.
        let s = ProblemSpec::new(Objective::Period, Strategy::Interval, CommModel::Overlap)
            .with_period_bounds(vec![2.0, 2.0]);
        assert!(s.validate(&apps).is_err());
        // NaN bound.
        let s = ProblemSpec::new(Objective::Energy, Strategy::Interval, CommModel::Overlap)
            .with_period_bounds(vec![f64::NAN, 1.0]);
        assert!(s.validate(&apps).is_err());
        // Front with constraints.
        let s =
            ProblemSpec::new(Objective::PeriodEnergyFront, Strategy::Interval, CommModel::Overlap)
                .with_energy_budget(10.0);
        assert!(s.validate(&apps).is_err());
        // Wrong version.
        let mut s = spec();
        s.version = 7;
        assert!(s.validate(&apps).is_err());
    }

    #[test]
    fn defaults_fill_missing_fields() {
        // A spec without constraints/hints keys parses with defaults.
        let json = r#"{
            "version": 1,
            "objective": "Period",
            "strategy": "Interval",
            "comm": "Overlap"
        }"#;
        let s = ProblemSpec::from_json(json).unwrap();
        assert_eq!(s.constraints, Thresholds::none());
        assert_eq!(s.hints, SolverHints::default());
    }
}
