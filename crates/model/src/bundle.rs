//! Deterministic repro bundles.
//!
//! A [`ReproBundle`] is a self-contained, versioned record of a trust
//! failure: a `--check` mismatch, an engine panic, or a differential-fuzz
//! divergence. It captures everything needed to re-execute the failing
//! scenario bit-for-bit — the full [`SolveRequest`] (or the generator
//! recipe + seeds that produced it), the structural digests of instance and
//! spec, the engine configuration, and the per-path observed outcomes.
//!
//! Two invariants, following the bd-2808 contract idiom:
//!
//! * **Deterministic identity**: the bundle id is a structural hash of the
//!   bundle's contents — no timestamps, hostnames or counters — so the
//!   same failure always produces the same `bundle-<id>.json`, and re-runs
//!   overwrite rather than accumulate.
//! * **Bitwise observations**: floating-point observations are stored as
//!   the hex of their IEEE-754 bit pattern (`Obs::bits`), never as decimal
//!   text, so replay comparison is exact even for NaN payloads and signed
//!   zeros that the JSON layer cannot round-trip.

use crate::application::AppSet;
use crate::generator::{self, AppGenConfig, PlatformGenConfig};
use crate::hash::{digest_hex, hash_instance, hash_spec, StructuralHasher};
use crate::io::serde_json_error;
use crate::platform::Platform;
use crate::spec::{ProblemSpec, SolveRequest};
use crate::topology::MultistageNetwork;
use serde::{Deserialize, Serialize};

/// Current bundle schema version; bumped on incompatible changes.
pub const BUNDLE_VERSION: u32 = 1;

/// What went wrong.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum FailureKind {
    /// `--check` cross-validation (analytic vs simulated vs reported)
    /// failed on a solved request.
    CheckMismatch,
    /// A solver panic escaped to the engine's backstop.
    EnginePanic,
    /// Two paths that must agree bitwise (routed vs planned vs engine vs
    /// memo, wavefront vs DAG oracle, fast-forward on vs off) disagreed.
    DifferentialMismatch,
}

/// The failure description carried by a bundle.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FailureContext {
    /// Failure class.
    pub kind: FailureKind,
    /// Human-readable description of the divergence or panic.
    pub message: String,
    /// Batch item index, when the failure came from a batch run.
    #[serde(default)]
    pub item_index: Option<usize>,
}

/// Which platform generator a [`GenRecipe`] drives.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PlatformKind {
    /// [`generator::random_fully_homogeneous`].
    FullyHomogeneous,
    /// [`generator::random_comm_homogeneous`].
    CommHomogeneous,
    /// [`generator::random_fully_heterogeneous`].
    FullyHeterogeneous,
    /// Comm-homogeneous processors behind a Benes multistage fabric.
    Multistage {
        /// Fabric link bandwidth.
        bandwidth: f64,
        /// Per-hop latency of the fabric.
        hop_latency: f64,
    },
}

/// A deterministic generator recipe: configs + seeds + spec, enough to
/// rebuild the exact [`SolveRequest`] without embedding it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GenRecipe {
    /// Application generator ranges.
    pub app_cfg: AppGenConfig,
    /// Platform generator ranges.
    pub platform_cfg: PlatformGenConfig,
    /// Which platform family to draw.
    pub platform_kind: PlatformKind,
    /// Seed for the application draw.
    pub app_seed: u64,
    /// Seed for the platform draw.
    pub platform_seed: u64,
    /// The problem to solve on the generated instance.
    pub spec: ProblemSpec,
}

impl GenRecipe {
    /// Re-generate the exact request this recipe describes. Relies on the
    /// generators being bit-deterministic for a given (config, seed) pair
    /// — which `generator_determinism.rs` locks down.
    pub fn materialize(&self) -> Result<SolveRequest, String> {
        let apps = generator::random_apps(&self.app_cfg, self.app_seed);
        let platform = self.materialize_platform(&apps)?;
        Ok(SolveRequest::new(
            format!("generated: app_seed={} platform_seed={}", self.app_seed, self.platform_seed),
            apps,
            platform,
            self.spec.clone(),
        ))
    }

    fn materialize_platform(&self, apps: &AppSet) -> Result<Platform, String> {
        match &self.platform_kind {
            PlatformKind::FullyHomogeneous => {
                Ok(generator::random_fully_homogeneous(&self.platform_cfg, self.platform_seed))
            }
            PlatformKind::CommHomogeneous => {
                Ok(generator::random_comm_homogeneous(&self.platform_cfg, self.platform_seed))
            }
            PlatformKind::FullyHeterogeneous => Ok(generator::random_fully_heterogeneous(
                &self.platform_cfg,
                apps.a(),
                self.platform_seed,
            )),
            PlatformKind::Multistage { bandwidth, hop_latency } => {
                let base =
                    generator::random_comm_homogeneous(&self.platform_cfg, self.platform_seed);
                let net = MultistageNetwork::new(*bandwidth, *hop_latency)
                    .map_err(|e| format!("invalid multistage recipe: {e}"))?;
                Platform::multistage(base.procs, net)
                    .map_err(|e| format!("invalid multistage platform: {e}"))
            }
        }
    }
}

/// Where the failing instance came from.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum BundleSource {
    /// The full request, embedded verbatim (CLI `--check` failures).
    Request(SolveRequest),
    /// A generator recipe (fuzz failures — smaller, and proves the
    /// generator path is deterministic end-to-end).
    Generated(GenRecipe),
    /// The request's original JSON text, embedded verbatim. Used when the
    /// typed request cannot be re-serialized — e.g. a poisoned instance
    /// whose infinite values the JSON writer refuses — so the bundle
    /// preserves the exact bytes that reproduce it.
    RawSpec(String),
}

impl BundleSource {
    /// Produce the concrete request, regenerating it if needed.
    pub fn materialize(&self) -> Result<SolveRequest, String> {
        match self {
            BundleSource::Request(req) => Ok(req.clone()),
            BundleSource::Generated(recipe) => recipe.materialize(),
            BundleSource::RawSpec(text) => SolveRequest::from_json(text)
                .map_err(|e| format!("embedded raw spec does not parse: {e}")),
        }
    }
}

/// The engine configuration under which the failure was observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EngineSnapshot {
    /// Worker threads.
    pub threads: usize,
    /// Memo cache enabled.
    pub cache: bool,
    /// Adaptive parallel cutoff.
    pub min_parallel_cost: u64,
}

/// A single named floating-point observation, stored bitwise.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Obs {
    /// What was measured (`"period"`, `"latency"`, `"power"`, ...).
    pub name: String,
    /// Hex of the IEEE-754 bit pattern (16 lowercase hex digits).
    pub bits: String,
    /// Human-readable approximation — display only, never compared.
    pub approx: String,
}

impl Obs {
    /// Record a value bitwise.
    pub fn of(name: impl Into<String>, value: f64) -> Self {
        Obs { name: name.into(), bits: format!("{:016x}", value.to_bits()), approx: format!("{value}") }
    }

    /// Recover the exact value (None on a malformed bundle).
    pub fn value(&self) -> Option<f64> {
        u64::from_str_radix(self.bits.trim_start_matches("0x"), 16).ok().map(f64::from_bits)
    }
}

/// What one execution path observed.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PathObservation {
    /// Path name (`"routed"`, `"planned"`, `"engine"`, `"memo-cached"`,
    /// `"sim-wavefront"`, `"sim-dag"`, `"sim-no-ff"`, `"analytic"`, ...).
    pub path: String,
    /// Structural digest of the path's outcome (32 lowercase hex digits),
    /// or an empty string when the path reports raw values only.
    #[serde(default)]
    pub digest: String,
    /// Named bitwise observations (simulation/analytic paths).
    #[serde(default)]
    pub values: Vec<Obs>,
    /// One-line human-readable summary of the outcome.
    #[serde(default)]
    pub summary: String,
}

/// A complete, re-executable record of one trust failure.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReproBundle {
    /// Bundle schema version.
    pub version: u32,
    /// Deterministic content hash (16 lowercase hex digits); filled by
    /// [`ReproBundle::seal`].
    pub bundle_id: String,
    /// Free-form provenance (which tool exported it, under what flags).
    pub description: String,
    /// What went wrong.
    pub failure: FailureContext,
    /// The failing instance, embedded or as a recipe.
    pub source: BundleSource,
    /// Structural digest of (apps, platform) — guards against generator
    /// drift between export and replay.
    pub instance_digest: String,
    /// Structural digest of the problem spec.
    pub spec_digest: String,
    /// Engine configuration in effect.
    pub engine: EngineSnapshot,
    /// Dataset count used by the simulation paths.
    pub datasets: usize,
    /// Every path that was executed, with its observed outcome.
    pub paths: Vec<PathObservation>,
}

impl ReproBundle {
    /// Assemble and seal a bundle. Digests are computed from the
    /// materialized source so replay can verify the source still
    /// regenerates the same instance.
    pub fn new(
        description: impl Into<String>,
        failure: FailureContext,
        source: BundleSource,
        engine: EngineSnapshot,
        datasets: usize,
        paths: Vec<PathObservation>,
    ) -> Result<Self, String> {
        let req = source.materialize()?;
        let mut bundle = ReproBundle {
            version: BUNDLE_VERSION,
            bundle_id: String::new(),
            description: description.into(),
            failure,
            source,
            instance_digest: digest_hex(hash_instance(&req.apps, &req.platform)),
            spec_digest: digest_hex(hash_spec(&req.problem)),
            engine,
            datasets,
            paths,
        };
        bundle.seal();
        Ok(bundle)
    }

    /// Recompute the deterministic bundle id from the bundle's contents.
    /// No timestamps or counters participate, so identical failures yield
    /// identical ids.
    pub fn seal(&mut self) {
        let mut h = StructuralHasher::new();
        h.write_u64(u64::from(self.version));
        h.write_usize(match self.failure.kind {
            FailureKind::CheckMismatch => 0,
            FailureKind::EnginePanic => 1,
            FailureKind::DifferentialMismatch => 2,
        });
        h.write_str(&self.failure.message);
        match self.failure.item_index {
            None => h.write_bool(false),
            Some(i) => {
                h.write_bool(true);
                h.write_usize(i);
            }
        }
        h.write_str(&self.instance_digest);
        h.write_str(&self.spec_digest);
        h.write_usize(self.engine.threads);
        h.write_bool(self.engine.cache);
        h.write_u64(self.engine.min_parallel_cost);
        h.write_usize(self.datasets);
        h.write_usize(self.paths.len());
        for p in &self.paths {
            h.write_str(&p.path);
            h.write_str(&p.digest);
            h.write_usize(p.values.len());
            for v in &p.values {
                h.write_str(&v.name);
                h.write_str(&v.bits);
            }
        }
        self.bundle_id = format!("{:016x}", (h.finish() >> 64) as u64 ^ h.finish() as u64);
    }

    /// The canonical file name: `bundle-<id>.json`.
    pub fn file_name(&self) -> String {
        format!("bundle-{}.json", self.bundle_id)
    }

    /// Materialize the request to re-execute.
    pub fn request(&self) -> Result<SolveRequest, String> {
        self.source.materialize()
    }

    /// Serialize to pretty JSON.
    pub fn to_json(&self) -> Result<String, String> {
        serde_json_error::to_string_pretty(self).map_err(|e| format!("bundle serialize: {e}"))
    }

    /// Deserialize from JSON, checking the schema version.
    pub fn from_json(json: &str) -> Result<Self, String> {
        let bundle: ReproBundle =
            serde_json_error::from_str(json).map_err(|e| format!("bundle parse: {e}"))?;
        if bundle.version != BUNDLE_VERSION {
            return Err(format!(
                "unsupported bundle version {} (expected {BUNDLE_VERSION})",
                bundle.version
            ));
        }
        Ok(bundle)
    }

    /// Write `bundle-<id>.json` under `dir` (created if missing); returns
    /// the full path.
    pub fn write_to_dir(&self, dir: &std::path::Path) -> Result<std::path::PathBuf, String> {
        let json = self.to_json()?;
        std::fs::create_dir_all(dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
        let path = dir.join(self.file_name());
        std::fs::write(&path, json).map_err(|e| format!("write {}: {e}", path.display()))?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eval::CommModel;
    use crate::spec::{Objective, Strategy};

    fn sample_recipe() -> GenRecipe {
        GenRecipe {
            app_cfg: AppGenConfig::default(),
            platform_cfg: PlatformGenConfig::default(),
            platform_kind: PlatformKind::CommHomogeneous,
            app_seed: 11,
            platform_seed: 12,
            spec: ProblemSpec::new(Objective::Period, Strategy::Interval, CommModel::Overlap),
        }
    }

    fn sample_bundle() -> ReproBundle {
        ReproBundle::new(
            "unit test",
            FailureContext {
                kind: FailureKind::DifferentialMismatch,
                message: "routed != planned".into(),
                item_index: Some(3),
            },
            BundleSource::Generated(sample_recipe()),
            EngineSnapshot { threads: 4, cache: true, min_parallel_cost: 64 },
            16,
            vec![PathObservation {
                path: "routed".into(),
                digest: "00ff".into(),
                values: vec![Obs::of("period", 1.5), Obs::of("nan", f64::NAN)],
                summary: "Solution".into(),
            }],
        )
        .expect("bundle builds")
    }

    #[test]
    fn bundle_roundtrips_through_json() {
        let b = sample_bundle();
        let json = b.to_json().expect("serializes");
        let back = ReproBundle::from_json(&json).expect("parses");
        assert_eq!(b, back);
    }

    #[test]
    fn bundle_id_is_deterministic_and_content_sensitive() {
        let a = sample_bundle();
        let b = sample_bundle();
        assert_eq!(a.bundle_id, b.bundle_id);
        assert_eq!(a.bundle_id.len(), 16);
        let mut c = sample_bundle();
        c.failure.message = "different".into();
        c.seal();
        assert_ne!(a.bundle_id, c.bundle_id);
    }

    #[test]
    fn recipe_materializes_deterministically() {
        let recipe = sample_recipe();
        let r1 = recipe.materialize().expect("materializes");
        let r2 = recipe.materialize().expect("materializes");
        assert_eq!(
            hash_instance(&r1.apps, &r1.platform),
            hash_instance(&r2.apps, &r2.platform)
        );
        let b = sample_bundle();
        assert_eq!(b.instance_digest, digest_hex(hash_instance(&r1.apps, &r1.platform)));
    }

    #[test]
    fn multistage_recipe_builds_a_multistage_platform() {
        let mut recipe = sample_recipe();
        recipe.platform_kind = PlatformKind::Multistage { bandwidth: 1.0, hop_latency: 0.05 };
        let req = recipe.materialize().expect("materializes");
        assert!(req.platform.topology.is_multistage());
    }

    #[test]
    fn nan_observations_survive_the_json_layer() {
        let b = sample_bundle();
        let json = b.to_json().expect("serializes despite NaN observation");
        let back = ReproBundle::from_json(&json).expect("parses");
        let obs = &back.paths[0].values[1];
        assert!(obs.value().expect("bits decode").is_nan());
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let mut b = sample_bundle();
        b.version = 99;
        let json = b.to_json().expect("serializes");
        assert!(ReproBundle::from_json(&json).is_err());
    }
}
