//! General mappings with processor sharing — the other Section 6 extension.
//!
//! The paper restricts itself to mappings without processor re-use and
//! notes (Section 3.3) that *general* mappings, where a processor may
//! execute any number of intervals from one or several applications,
//! "immediately lead to NP-hard optimization problems, even for the
//! simplest mono-criterion problem: period minimization for a single
//! application mapped onto homogeneous and uni-modal processors, paying no
//! communication cost (straightforward reduction from 2-partition)", and
//! defers "the impact of processor sharing" to future work.
//!
//! This module implements that extension:
//!
//! * [`GeneralMapping`] — intervals may share processors; a shared
//!   processor time-multiplexes its intervals, so its cycle-time is the
//!   *sum* of the interval demands (the processor must serve every
//!   interval once per period);
//! * an evaluator for period/latency/energy under sharing;
//! * the 2-PARTITION reduction the paper sketches
//!   ([`sharing_gadget_encode`]), ready for the exact solvers to certify.

use crate::application::AppSet;
use crate::energy::EnergyModel;
use crate::error::ModelError;
use crate::eval::CommModel;
use crate::gadgets::TwoPartition;
use crate::mapping::Interval;
use crate::num::fmax;
use crate::platform::{Links, Platform, Processor};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// One interval on one processor (sharing allowed across assignments).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SharedAssignment {
    /// The stage interval.
    pub interval: Interval,
    /// The executing processor.
    pub proc: usize,
    /// The selected mode (one speed per processor for the whole run, so all
    /// intervals of a processor must agree — validated).
    pub mode: usize,
}

/// A general mapping: interval structure per application, but processors
/// may be re-used across intervals and applications.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct GeneralMapping {
    /// All assignments.
    pub assignments: Vec<SharedAssignment>,
}

impl GeneralMapping {
    /// Empty mapping.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add an assignment.
    pub fn push(&mut self, interval: Interval, proc: usize, mode: usize) {
        self.assignments.push(SharedAssignment { interval, proc, mode });
    }

    /// Builder-style [`push`](Self::push).
    pub fn with(mut self, interval: Interval, proc: usize, mode: usize) -> Self {
        self.push(interval, proc, mode);
        self
    }

    /// The assignments of application `a`, in chain order.
    pub fn app_chain(&self, app: usize) -> Vec<SharedAssignment> {
        let mut chain: Vec<SharedAssignment> =
            self.assignments.iter().copied().filter(|x| x.interval.app == app).collect();
        chain.sort_by_key(|x| x.interval.first);
        chain
    }

    /// Distinct enrolled processors.
    pub fn enrolled_procs(&self) -> Vec<(usize, usize)> {
        let mut seen: HashMap<usize, usize> = HashMap::new();
        for asg in &self.assignments {
            seen.entry(asg.proc).or_insert(asg.mode);
        }
        let mut v: Vec<(usize, usize)> = seen.into_iter().collect();
        v.sort_unstable();
        v
    }

    /// Validate: per-app interval coverage, consistent per-processor modes,
    /// index ranges. Sharing is allowed — that is the point.
    pub fn validate(&self, apps: &AppSet, platform: &Platform) -> Result<(), ModelError> {
        let mut proc_mode: HashMap<usize, usize> = HashMap::new();
        for asg in &self.assignments {
            if asg.interval.app >= apps.a() {
                return Err(ModelError::InvalidMapping {
                    reason: format!("unknown application {}", asg.interval.app),
                });
            }
            if asg.interval.last >= apps.apps[asg.interval.app].n() {
                return Err(ModelError::InvalidMapping { reason: "interval out of bounds".into() });
            }
            if asg.proc >= platform.p() {
                return Err(ModelError::InvalidMapping {
                    reason: format!("unknown processor {}", asg.proc),
                });
            }
            if asg.mode >= platform.procs[asg.proc].modes() {
                return Err(ModelError::InvalidMapping {
                    reason: format!("mode {} out of range for processor {}", asg.mode, asg.proc),
                });
            }
            // One fixed speed per processor for the whole execution
            // (Section 3.2): all its intervals must agree.
            if let Some(&m) = proc_mode.get(&asg.proc) {
                if m != asg.mode {
                    return Err(ModelError::InvalidMapping {
                        reason: format!("processor {} used at two different modes", asg.proc),
                    });
                }
            } else {
                proc_mode.insert(asg.proc, asg.mode);
            }
        }
        for a in 0..apps.a() {
            let chain = self.app_chain(a);
            if chain.is_empty() {
                return Err(ModelError::InvalidMapping {
                    reason: format!("application {a} is not mapped"),
                });
            }
            if chain[0].interval.first != 0
                || chain.last().expect("non-empty").interval.last != apps.apps[a].n() - 1
            {
                return Err(ModelError::InvalidMapping {
                    reason: format!("application {a} not fully covered"),
                });
            }
            for w in chain.windows(2) {
                if w[1].interval.first != w[0].interval.last + 1 {
                    return Err(ModelError::InvalidMapping {
                        reason: format!("application {a}: interval gap/overlap"),
                    });
                }
            }
        }
        Ok(())
    }
}

/// Evaluator for general mappings.
///
/// A shared processor serves each of its intervals once per period, so the
/// per-processor cycle-time *sums* the interval demands; under overlap the
/// three operation streams (receive / compute / send) each sum separately
/// and the cycle is their max, under no-overlap everything is serialized.
pub struct GeneralEvaluator<'m> {
    apps: &'m AppSet,
    platform: &'m Platform,
    energy: EnergyModel,
}

impl<'m> GeneralEvaluator<'m> {
    /// Build with the default energy model.
    pub fn new(apps: &'m AppSet, platform: &'m Platform) -> Self {
        GeneralEvaluator { apps, platform, energy: EnergyModel::default() }
    }

    /// The three per-interval operation times of an assignment, given its
    /// chain context.
    fn interval_ops(&self, mapping: &GeneralMapping, asg: &SharedAssignment) -> (f64, f64, f64) {
        let a = asg.interval.app;
        let app = &self.apps.apps[a];
        let chain = mapping.app_chain(a);
        let j = chain
            .iter()
            .position(|x| x.interval == asg.interval)
            .expect("assignment belongs to the chain");
        let speed = self.platform.procs[asg.proc].speed(asg.mode);
        let din = app.input_of(asg.interval.first);
        let dout = app.output_of(asg.interval.last);
        let t_in = if j == 0 {
            self.platform.transfer_time_input(a, asg.proc, din)
        } else {
            let prev = chain[j - 1];
            if prev.proc == asg.proc {
                din / f64::INFINITY // same processor: no communication
            } else {
                self.platform.transfer_time_inter(a, prev.proc, asg.proc, din)
            }
        };
        let t_out = if j == chain.len() - 1 {
            self.platform.transfer_time_output(a, asg.proc, dout)
        } else {
            let next = chain[j + 1];
            if next.proc == asg.proc {
                dout / f64::INFINITY
            } else {
                self.platform.transfer_time_inter(a, asg.proc, next.proc, dout)
            }
        };
        (t_in, app.interval_work(asg.interval.first, asg.interval.last) / speed, t_out)
    }

    /// Cycle-time of processor `u`: sum of its interval demands.
    pub fn proc_cycle(&self, mapping: &GeneralMapping, u: usize, model: CommModel) -> f64 {
        let mut sum_in = 0.0;
        let mut sum_comp = 0.0;
        let mut sum_out = 0.0;
        for asg in mapping.assignments.iter().filter(|x| x.proc == u) {
            let (i, c, o) = self.interval_ops(mapping, asg);
            sum_in += i;
            sum_comp += c;
            sum_out += o;
        }
        model.combine(sum_in, sum_comp, sum_out)
    }

    /// Global weighted period: every application is paced by the busiest
    /// processor it touches (shared processors couple the applications).
    pub fn period(&self, mapping: &GeneralMapping, model: CommModel) -> f64 {
        let procs: Vec<usize> = mapping.enrolled_procs().iter().map(|&(u, _)| u).collect();
        let cycles: HashMap<usize, f64> =
            procs.iter().map(|&u| (u, self.proc_cycle(mapping, u, model))).collect();
        let mut global = 0.0f64;
        for (a, app) in self.apps.apps.iter().enumerate() {
            let t_a = mapping
                .app_chain(a)
                .iter()
                .map(|asg| cycles[&asg.proc])
                .fold(0.0, fmax);
            global = fmax(global, app.weight * t_a);
        }
        global
    }

    /// Global weighted latency (per-dataset path; sharing does not change
    /// the path, only the steady-state pacing).
    pub fn latency(&self, mapping: &GeneralMapping) -> f64 {
        let mut global = 0.0f64;
        for (a, app) in self.apps.apps.iter().enumerate() {
            let chain = mapping.app_chain(a);
            let mut l = 0.0;
            for (j, asg) in chain.iter().enumerate() {
                let (i, c, o) = self.interval_ops(mapping, asg);
                if j == 0 {
                    l += i;
                }
                l += c + o;
            }
            global = fmax(global, app.weight * l);
        }
        global
    }

    /// Total energy: each distinct enrolled processor pays once.
    pub fn energy(&self, mapping: &GeneralMapping) -> f64 {
        mapping
            .enrolled_procs()
            .iter()
            .map(|&(u, m)| self.energy.proc_energy(self.platform, u, m))
            .sum()
    }
}

/// The Section 3.3 reduction: 2-PARTITION → period minimization with
/// general mappings, single application, 2 identical uni-modal processors,
/// no communication. Stage `i` has work `a_i`; a period of `S/2` is
/// achievable iff the items can be split evenly.
pub struct SharingGadget {
    /// The single application (one stage per item).
    pub apps: AppSet,
    /// Two identical unit-speed processors.
    pub platform: Platform,
    /// The period target `S/2`.
    pub target_period: f64,
}

/// Encode a 2-PARTITION instance into the general-mapping gadget.
pub fn sharing_gadget_encode(inst: &TwoPartition) -> SharingGadget {
    let stages: Vec<crate::application::Stage> = inst
        .items
        .iter()
        .map(|&a| crate::application::Stage::new(a as f64, 0.0))
        .collect();
    let app = crate::application::Application::named("sharing-gadget", 0.0, stages, 1.0)
        .expect("valid");
    let apps = AppSet::single(app);
    let platform = Platform::new(
        vec![Processor::uni_modal(1.0).expect("valid"); 2],
        Links::Uniform(1.0),
    )
    .expect("valid");
    SharingGadget { apps, platform, target_period: inst.total() as f64 / 2.0 }
}

/// Build the general mapping a 2-PARTITION certificate induces: stages in
/// subset `I` on processor 0 (as singleton intervals), the rest on
/// processor 1.
pub fn sharing_gadget_mapping(side: &[bool]) -> GeneralMapping {
    let mut m = GeneralMapping::new();
    for (i, &in_subset) in side.iter().enumerate() {
        m.push(Interval::new(0, i, i), if in_subset { 0 } else { 1 }, 0);
    }
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::application::Application;

    fn setup() -> (AppSet, Platform) {
        let apps = AppSet::new(vec![
            Application::from_pairs(0.0, &[(4.0, 0.0), (2.0, 0.0)]),
            Application::from_pairs(0.0, &[(3.0, 0.0)]),
        ])
        .unwrap();
        let pf = Platform::fully_homogeneous(2, vec![1.0], 1.0).unwrap();
        (apps, pf)
    }

    #[test]
    fn sharing_sums_processor_load() {
        let (apps, pf) = setup();
        // P0 runs app0 entirely and app1: cycle = (4+2) + 3 = 9.
        let m = GeneralMapping::new()
            .with(Interval::new(0, 0, 1), 0, 0)
            .with(Interval::new(1, 0, 0), 0, 0);
        m.validate(&apps, &pf).unwrap();
        let ev = GeneralEvaluator::new(&apps, &pf);
        assert_eq!(ev.proc_cycle(&m, 0, CommModel::Overlap), 9.0);
        assert_eq!(ev.period(&m, CommModel::Overlap), 9.0);
        assert_eq!(ev.energy(&m), 1.0);
    }

    #[test]
    fn splitting_across_processors_reduces_period() {
        let (apps, pf) = setup();
        let shared = GeneralMapping::new()
            .with(Interval::new(0, 0, 1), 0, 0)
            .with(Interval::new(1, 0, 0), 0, 0);
        let split = GeneralMapping::new()
            .with(Interval::new(0, 0, 1), 0, 0)
            .with(Interval::new(1, 0, 0), 1, 0);
        let ev = GeneralEvaluator::new(&apps, &pf);
        assert!(ev.period(&split, CommModel::Overlap) < ev.period(&shared, CommModel::Overlap));
        assert_eq!(ev.period(&split, CommModel::Overlap), 6.0);
    }

    #[test]
    fn internal_communications_vanish_on_same_processor() {
        let apps = AppSet::single(Application::from_pairs(1.0, &[(2.0, 100.0), (2.0, 1.0)]));
        let pf = Platform::fully_homogeneous(2, vec![1.0], 1.0).unwrap();
        // Both stages on P0 as two intervals: the δ=100 edge is internal.
        let m = GeneralMapping::new()
            .with(Interval::new(0, 0, 0), 0, 0)
            .with(Interval::new(0, 1, 1), 0, 0);
        let ev = GeneralEvaluator::new(&apps, &pf);
        // Overlap cycle: max(in=1, comp=4, out=1) = 4 (100 never paid).
        assert_eq!(ev.proc_cycle(&m, 0, CommModel::Overlap), 4.0);
        assert_eq!(ev.latency(&m), 1.0 + 4.0 + 1.0);
    }

    #[test]
    fn mode_consistency_enforced() {
        let apps = AppSet::single(Application::from_pairs(0.0, &[(1.0, 0.0), (1.0, 0.0)]));
        let pf = Platform::fully_homogeneous(1, vec![1.0, 2.0], 1.0).unwrap();
        let m = GeneralMapping::new()
            .with(Interval::new(0, 0, 0), 0, 0)
            .with(Interval::new(0, 1, 1), 0, 1);
        assert!(m.validate(&apps, &pf).is_err());
        let ok = GeneralMapping::new()
            .with(Interval::new(0, 0, 0), 0, 1)
            .with(Interval::new(0, 1, 1), 0, 1);
        assert!(ok.validate(&apps, &pf).is_ok());
    }

    #[test]
    fn gadget_yes_reaches_half_sum() {
        let inst = TwoPartition { items: vec![3, 1, 1, 2, 2, 1] };
        let side = inst.solve().unwrap();
        let g = sharing_gadget_encode(&inst);
        let m = sharing_gadget_mapping(&side);
        m.validate(&g.apps, &g.platform).unwrap();
        let ev = GeneralEvaluator::new(&g.apps, &g.platform);
        assert_eq!(ev.period(&m, CommModel::Overlap), g.target_period);
    }

    #[test]
    fn coverage_still_required() {
        let (apps, pf) = setup();
        let m = GeneralMapping::new().with(Interval::new(0, 0, 1), 0, 0);
        assert!(m.validate(&apps, &pf).is_err());
    }
}
