//! Global objective aggregation and multi-criteria thresholds.
//!
//! The paper aggregates per-application values as `X = max_a W_a · X_a`
//! (Eq. 6), where the weights can be 1 (plain maximum), a priority ratio
//! fixed by the platform manager, or `1/X_a*` with `X_a*` the value the
//! application would achieve alone on the platform — in which case `X` is
//! the *maximum stretch* of Bender et al.
//!
//! Multi-criteria problems are handled with thresholds: one criterion is
//! optimized while the others are bounded (the "laptop" and "server"
//! problems of the introduction). [`Thresholds`] carries the per-application
//! period/latency bounds and the global energy budget.

use crate::application::AppSet;
use crate::num::fmax;
use serde::{Deserialize, Serialize};

/// How per-application weights are chosen for Eq. (6).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Aggregation {
    /// `W_a = 1` for all applications (plain maximum).
    Max,
    /// Explicit priority ratios.
    Weighted(Vec<f64>),
    /// `W_a = 1 / X_a*` where `X_a*` is a supplied per-application reference
    /// (value achieved alone on the platform): maximum-stretch objective.
    Stretch(Vec<f64>),
}

impl Aggregation {
    /// Materialize the weight vector for `A` applications.
    pub fn weights(&self, a: usize) -> Vec<f64> {
        match self {
            Aggregation::Max => vec![1.0; a],
            Aggregation::Weighted(w) => {
                assert_eq!(w.len(), a, "weight vector length must equal A");
                w.clone()
            }
            Aggregation::Stretch(reference) => {
                assert_eq!(reference.len(), a, "reference vector length must equal A");
                reference.iter().map(|x| 1.0 / x).collect()
            }
        }
    }

    /// Install the weights into an application set.
    pub fn apply(&self, apps: &mut AppSet) {
        let weights = self.weights(apps.apps.len());
        for (app, w) in apps.apps.iter_mut().zip(weights) {
            app.weight = w;
        }
    }

    /// Aggregate per-application values.
    pub fn aggregate(&self, values: &[f64]) -> f64 {
        self.weights(values.len())
            .iter()
            .zip(values)
            .map(|(w, x)| w * x)
            .fold(0.0, fmax)
    }
}

/// Threshold bundle for multi-criteria optimization.
///
/// "Fixing the period or the latency means fixing a threshold on the period
/// or latency of each application, thus providing a table of period or
/// latency values. For the energy, only a bound on the global energy
/// consumption is required." (Section 5.)
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Thresholds {
    /// Per-application period bounds `T_a ≤ …` (empty = unconstrained).
    pub period: Option<Vec<f64>>,
    /// Per-application latency bounds `L_a ≤ …` (empty = unconstrained).
    pub latency: Option<Vec<f64>>,
    /// Global energy budget.
    pub energy: Option<f64>,
}

impl Thresholds {
    /// No constraint at all.
    pub fn none() -> Self {
        Thresholds::default()
    }

    /// A uniform period bound for all `a` applications.
    pub fn uniform_period(bound: f64, a: usize) -> Self {
        Thresholds { period: Some(vec![bound; a]), ..Default::default() }
    }

    /// A uniform latency bound for all `a` applications.
    pub fn uniform_latency(bound: f64, a: usize) -> Self {
        Thresholds { latency: Some(vec![bound; a]), ..Default::default() }
    }

    /// Attach per-application period bounds.
    pub fn with_period(mut self, bounds: Vec<f64>) -> Self {
        self.period = Some(bounds);
        self
    }

    /// Attach per-application latency bounds.
    pub fn with_latency(mut self, bounds: Vec<f64>) -> Self {
        self.latency = Some(bounds);
        self
    }

    /// Attach a global energy budget.
    pub fn with_energy(mut self, budget: f64) -> Self {
        self.energy = Some(budget);
        self
    }

    /// Check a full evaluation against the thresholds (with tolerance).
    pub fn satisfied_by(&self, periods: &[f64], latencies: &[f64], energy: f64) -> bool {
        if let Some(tb) = &self.period {
            if periods.iter().zip(tb).any(|(t, b)| !crate::num::le(*t, *b)) {
                return false;
            }
        }
        if let Some(lb) = &self.latency {
            if latencies.iter().zip(lb).any(|(l, b)| !crate::num::le(*l, *b)) {
                return false;
            }
        }
        if let Some(eb) = self.energy {
            if !crate::num::le(energy, eb) {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::application::Application;

    #[test]
    fn max_aggregation() {
        let agg = Aggregation::Max;
        assert_eq!(agg.aggregate(&[1.0, 3.0, 2.0]), 3.0);
    }

    #[test]
    fn weighted_aggregation() {
        let agg = Aggregation::Weighted(vec![2.0, 1.0]);
        assert_eq!(agg.aggregate(&[2.0, 3.0]), 4.0);
    }

    #[test]
    fn stretch_aggregation() {
        // References are the values alone on the platform; a value equal to
        // its reference has stretch 1.
        let agg = Aggregation::Stretch(vec![2.0, 4.0]);
        assert_eq!(agg.aggregate(&[2.0, 4.0]), 1.0);
        assert_eq!(agg.aggregate(&[2.0, 8.0]), 2.0);
    }

    #[test]
    fn apply_installs_weights() {
        let mut apps = AppSet::new(vec![
            Application::from_pairs(0.0, &[(1.0, 0.0)]),
            Application::from_pairs(0.0, &[(1.0, 0.0)]),
        ])
        .unwrap();
        Aggregation::Weighted(vec![3.0, 7.0]).apply(&mut apps);
        assert_eq!(apps.apps[0].weight, 3.0);
        assert_eq!(apps.apps[1].weight, 7.0);
    }

    #[test]
    #[should_panic(expected = "length must equal A")]
    fn weight_length_mismatch_panics() {
        Aggregation::Weighted(vec![1.0]).aggregate(&[1.0, 2.0]);
    }

    #[test]
    fn thresholds_checks() {
        let th = Thresholds::none()
            .with_period(vec![2.0, 2.0])
            .with_latency(vec![5.0, 5.0])
            .with_energy(50.0);
        assert!(th.satisfied_by(&[2.0, 1.0], &[5.0, 4.0], 50.0));
        assert!(!th.satisfied_by(&[2.1, 1.0], &[5.0, 4.0], 50.0));
        assert!(!th.satisfied_by(&[2.0, 1.0], &[5.0, 5.5], 50.0));
        assert!(!th.satisfied_by(&[2.0, 1.0], &[5.0, 4.0], 51.0));
        assert!(Thresholds::none().satisfied_by(&[9.0], &[9.0], 9e9));
    }

    #[test]
    fn uniform_constructors() {
        let th = Thresholds::uniform_period(2.0, 3);
        assert_eq!(th.period, Some(vec![2.0, 2.0, 2.0]));
        let th = Thresholds::uniform_latency(4.0, 2);
        assert_eq!(th.latency, Some(vec![4.0, 4.0]));
    }
}
