//! Mapping strategies (Section 3.3 of the paper).
//!
//! An **interval mapping** partitions the stages of every application into
//! intervals of consecutive stages; each interval is executed by a distinct
//! processor (no processor sharing, within or across applications). A
//! **one-to-one mapping** is the special case where every interval holds a
//! single stage. Each enrolled processor additionally selects one execution
//! mode (speed), fixed for the whole run.

use crate::application::AppSet;
use crate::error::ModelError;
use crate::platform::Platform;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// An interval `[first, last]` (0-based, inclusive) of consecutive stages of
/// application `app`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Interval {
    /// Application index `a`.
    pub app: usize,
    /// First stage of the interval (0-based).
    pub first: usize,
    /// Last stage of the interval (0-based, inclusive).
    pub last: usize,
}

impl Interval {
    /// Build an interval; panics if `first > last` (programming error).
    pub fn new(app: usize, first: usize, last: usize) -> Self {
        assert!(first <= last, "interval first must not exceed last");
        Interval { app, first, last }
    }

    /// Number of stages in the interval.
    #[inline]
    pub fn len(&self) -> usize {
        self.last - self.first + 1
    }

    /// Intervals are never empty (`first ≤ last` is enforced); provided for
    /// `len`/`is_empty` API symmetry.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Whether the interval holds a single stage.
    #[inline]
    pub fn is_singleton(&self) -> bool {
        self.first == self.last
    }
}

/// One interval assigned to one processor running in one mode.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Assignment {
    /// The stage interval.
    pub interval: Interval,
    /// The enrolled processor index `u`.
    pub proc: usize,
    /// The selected mode (0-based index into the processor's speed set).
    pub mode: usize,
}

/// A complete mapping of all applications onto the platform.
///
/// Invariants (checked by [`Mapping::validate`]):
/// * every stage of every application is covered by exactly one interval;
/// * the intervals of an application are consecutive and in order;
/// * no processor appears in two assignments (no sharing, Section 3.3);
/// * every mode index is valid for its processor.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Mapping {
    /// All interval assignments, in arbitrary order.
    pub assignments: Vec<Assignment>,
}

impl Mapping {
    /// Empty mapping (invalid until populated).
    pub fn new() -> Self {
        Mapping::default()
    }

    /// Add one assignment.
    pub fn push(&mut self, interval: Interval, proc: usize, mode: usize) {
        self.assignments.push(Assignment { interval, proc, mode });
    }

    /// Builder-style [`push`](Mapping::push).
    pub fn with(mut self, interval: Interval, proc: usize, mode: usize) -> Self {
        self.push(interval, proc, mode);
        self
    }

    /// The assignments of application `a`, sorted by first stage.
    pub fn app_chain(&self, app: usize) -> Vec<Assignment> {
        let mut chain: Vec<Assignment> =
            self.assignments.iter().copied().filter(|asg| asg.interval.app == app).collect();
        chain.sort_by_key(|asg| asg.interval.first);
        chain
    }

    /// Number of enrolled (used) processors.
    pub fn enrolled(&self) -> usize {
        self.assignments.len()
    }

    /// Iterator over `(proc, mode)` of enrolled processors.
    pub fn enrolled_procs(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.assignments.iter().map(|a| (a.proc, a.mode))
    }

    /// Whether every interval is a singleton (one-to-one mapping).
    pub fn is_one_to_one(&self) -> bool {
        self.assignments.iter().all(|a| a.interval.is_singleton())
    }

    /// Validate all structural invariants against an application set and a
    /// platform.
    pub fn validate(&self, apps: &AppSet, platform: &Platform) -> Result<(), ModelError> {
        let mut used = HashSet::new();
        for asg in &self.assignments {
            if asg.interval.app >= apps.a() {
                return Err(ModelError::InvalidMapping {
                    reason: format!("assignment references unknown application {}", asg.interval.app),
                });
            }
            let n = apps.apps[asg.interval.app].n();
            if asg.interval.last >= n {
                return Err(ModelError::InvalidMapping {
                    reason: format!(
                        "interval [{}..{}] out of bounds for application {} ({} stages)",
                        asg.interval.first, asg.interval.last, asg.interval.app, n
                    ),
                });
            }
            if asg.proc >= platform.p() {
                return Err(ModelError::InvalidMapping {
                    reason: format!("assignment references unknown processor {}", asg.proc),
                });
            }
            if asg.mode >= platform.procs[asg.proc].modes() {
                return Err(ModelError::InvalidMapping {
                    reason: format!("mode {} out of range for processor {}", asg.mode, asg.proc),
                });
            }
            if !used.insert(asg.proc) {
                return Err(ModelError::InvalidMapping {
                    reason: format!("processor {} is shared by two intervals", asg.proc),
                });
            }
        }
        // Coverage and consecutiveness per application.
        for a in 0..apps.a() {
            let chain = self.app_chain(a);
            if chain.is_empty() {
                return Err(ModelError::InvalidMapping {
                    reason: format!("application {} is not mapped", a),
                });
            }
            if chain[0].interval.first != 0 {
                return Err(ModelError::InvalidMapping {
                    reason: format!("application {}: first stage not covered", a),
                });
            }
            for w in chain.windows(2) {
                if w[1].interval.first != w[0].interval.last + 1 {
                    return Err(ModelError::InvalidMapping {
                        reason: format!(
                            "application {}: gap or overlap between [{}..{}] and [{}..{}]",
                            a,
                            w[0].interval.first,
                            w[0].interval.last,
                            w[1].interval.first,
                            w[1].interval.last
                        ),
                    });
                }
            }
            let n = apps.apps[a].n();
            if chain.last().expect("non-empty").interval.last != n - 1 {
                return Err(ModelError::InvalidMapping {
                    reason: format!("application {}: last stage not covered", a),
                });
            }
        }
        Ok(())
    }

    /// Rewrite every enrolled processor to run in its **highest** mode.
    ///
    /// When energy is not among the optimized criteria, running enrolled
    /// processors as fast as possible can only improve period and latency
    /// (Section 2), so performance-only solvers normalize mappings this way.
    pub fn at_max_speed(mut self, platform: &Platform) -> Self {
        for asg in &mut self.assignments {
            asg.mode = platform.procs[asg.proc].modes() - 1;
        }
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::application::Application;
    use crate::platform::Processor;

    fn setup() -> (AppSet, Platform) {
        let a0 = Application::from_pairs(1.0, &[(3.0, 3.0), (2.0, 2.0), (1.0, 0.0)]);
        let a1 = Application::from_pairs(0.0, &[(2.0, 1.0), (6.0, 1.0)]);
        let apps = AppSet::new(vec![a0, a1]).unwrap();
        let platform = Platform::comm_homogeneous(
            vec![
                Processor::new(vec![3.0, 6.0]).unwrap(),
                Processor::new(vec![6.0, 8.0]).unwrap(),
                Processor::new(vec![1.0, 6.0]).unwrap(),
            ],
            1.0,
        )
        .unwrap();
        (apps, platform)
    }

    #[test]
    fn valid_interval_mapping() {
        let (apps, pf) = setup();
        let m = Mapping::new()
            .with(Interval::new(0, 0, 2), 2, 1)
            .with(Interval::new(1, 0, 0), 1, 0)
            .with(Interval::new(1, 1, 1), 0, 1);
        assert!(m.validate(&apps, &pf).is_ok());
        assert!(!m.is_one_to_one());
        assert_eq!(m.enrolled(), 3);
    }

    #[test]
    fn rejects_processor_sharing() {
        let (apps, pf) = setup();
        let m = Mapping::new()
            .with(Interval::new(0, 0, 2), 0, 0)
            .with(Interval::new(1, 0, 1), 0, 0);
        let err = m.validate(&apps, &pf).unwrap_err();
        assert!(err.to_string().contains("shared"));
    }

    #[test]
    fn rejects_gaps_and_partial_coverage() {
        let (apps, pf) = setup();
        // App 0 missing stage 2.
        let m = Mapping::new()
            .with(Interval::new(0, 0, 1), 0, 0)
            .with(Interval::new(1, 0, 1), 1, 0);
        assert!(m.validate(&apps, &pf).is_err());
        // Gap between intervals of app 1.
        let m = Mapping::new()
            .with(Interval::new(0, 0, 2), 0, 0)
            .with(Interval::new(1, 0, 0), 1, 0)
            .with(Interval::new(1, 1, 1), 2, 0);
        assert!(m.validate(&apps, &pf).is_ok());
        let m = Mapping::new()
            .with(Interval::new(0, 0, 2), 0, 0)
            .with(Interval::new(1, 1, 1), 2, 0);
        assert!(m.validate(&apps, &pf).is_err());
    }

    #[test]
    fn rejects_out_of_range_indices() {
        let (apps, pf) = setup();
        let m = Mapping::new().with(Interval::new(5, 0, 0), 0, 0);
        assert!(m.validate(&apps, &pf).is_err());
        let m = Mapping::new().with(Interval::new(0, 0, 9), 0, 0);
        assert!(m.validate(&apps, &pf).is_err());
        let m = Mapping::new().with(Interval::new(0, 0, 2), 9, 0);
        assert!(m.validate(&apps, &pf).is_err());
        let m = Mapping::new().with(Interval::new(0, 0, 2), 0, 9);
        assert!(m.validate(&apps, &pf).is_err());
    }

    #[test]
    fn unmapped_application_rejected() {
        let (apps, pf) = setup();
        let m = Mapping::new().with(Interval::new(0, 0, 2), 0, 0);
        let err = m.validate(&apps, &pf).unwrap_err();
        assert!(err.to_string().contains("not mapped"));
    }

    #[test]
    fn max_speed_normalization() {
        let (_, pf) = setup();
        let m = Mapping::new().with(Interval::new(0, 0, 2), 2, 0).at_max_speed(&pf);
        assert_eq!(m.assignments[0].mode, 1);
    }

    #[test]
    fn one_to_one_detection_and_chain_order() {
        let m = Mapping::new()
            .with(Interval::new(0, 1, 1), 1, 0)
            .with(Interval::new(0, 0, 0), 0, 0)
            .with(Interval::new(0, 2, 2), 2, 0);
        assert!(m.is_one_to_one());
        let chain = m.app_chain(0);
        assert_eq!(chain.iter().map(|a| a.interval.first).collect::<Vec<_>>(), vec![0, 1, 2]);
    }
}
