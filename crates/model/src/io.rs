//! Instance and result (de)serialization.
//!
//! Research code lives or dies by reproducible instances: this module
//! bundles an application set, a platform and optional mappings into a
//! single versioned [`Instance`] document that round-trips through JSON
//! (via `serde`), so experiments can be archived, shared and re-run
//! bit-for-bit.

use crate::application::AppSet;
use crate::mapping::Mapping;
use crate::objective::Thresholds;
use crate::platform::Platform;
use serde::{Deserialize, Serialize};

/// Current schema version; bumped on incompatible changes.
pub const SCHEMA_VERSION: u32 = 1;

/// A self-contained problem instance (plus optional solutions).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Instance {
    /// Schema version (for forward compatibility checks).
    pub version: u32,
    /// Free-form description (provenance, seed, purpose).
    pub description: String,
    /// The concurrent applications.
    pub apps: AppSet,
    /// The target platform.
    pub platform: Platform,
    /// Optional thresholds the instance is meant to be solved under.
    #[serde(default)]
    pub thresholds: Option<Thresholds>,
    /// Named mappings (e.g. `"period-optimal"`, `"compromise"`).
    #[serde(default)]
    pub mappings: Vec<NamedMapping>,
}

/// A mapping with a label.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NamedMapping {
    /// Human-readable label.
    pub name: String,
    /// The mapping.
    pub mapping: Mapping,
}

impl Instance {
    /// Bundle an instance.
    pub fn new(description: impl Into<String>, apps: AppSet, platform: Platform) -> Self {
        Instance {
            version: SCHEMA_VERSION,
            description: description.into(),
            apps,
            platform,
            thresholds: None,
            mappings: Vec::new(),
        }
    }

    /// Attach thresholds.
    pub fn with_thresholds(mut self, thresholds: Thresholds) -> Self {
        self.thresholds = Some(thresholds);
        self
    }

    /// Attach a named mapping.
    pub fn with_mapping(mut self, name: impl Into<String>, mapping: Mapping) -> Self {
        self.mappings.push(NamedMapping { name: name.into(), mapping });
        self
    }

    /// Serialize to a JSON string.
    pub fn to_json(&self) -> Result<String, serde_json_error::Error> {
        serde_json_error::to_string_pretty(self)
    }

    /// Deserialize from JSON, checking the schema version and validating
    /// all embedded mappings.
    pub fn from_json(json: &str) -> Result<Self, InstanceError> {
        let inst: Instance =
            serde_json_error::from_str(json).map_err(InstanceError::Parse)?;
        if inst.version != SCHEMA_VERSION {
            return Err(InstanceError::Version { found: inst.version });
        }
        for nm in &inst.mappings {
            nm.mapping
                .validate(&inst.apps, &inst.platform)
                .map_err(|e| InstanceError::InvalidMapping {
                    name: nm.name.clone(),
                    reason: e.to_string(),
                })?;
        }
        Ok(inst)
    }
}

/// Errors while loading an instance.
#[derive(Debug)]
pub enum InstanceError {
    /// JSON parse failure.
    Parse(serde_json_error::Error),
    /// Unknown schema version.
    Version {
        /// The version found in the document.
        found: u32,
    },
    /// An embedded mapping failed validation against its own instance.
    InvalidMapping {
        /// The mapping's label.
        name: String,
        /// Validation failure reason.
        reason: String,
    },
}

impl std::fmt::Display for InstanceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InstanceError::Parse(e) => write!(f, "parse error: {e}"),
            InstanceError::Version { found } => {
                write!(f, "unsupported schema version {found} (expected {SCHEMA_VERSION})")
            }
            InstanceError::InvalidMapping { name, reason } => {
                write!(f, "embedded mapping `{name}` is invalid: {reason}")
            }
        }
    }
}

impl std::error::Error for InstanceError {}

/// Minimal JSON (de)serialization built on `serde`'s data model — the
/// approved dependency set has no `serde_json`, so this module implements
/// the small JSON subset the [`Instance`] schema needs (objects, arrays,
/// strings, finite f64/u64/usize numbers, booleans, null / `Option`).
pub mod serde_json_error {
    use serde::de::DeserializeOwned;
    use serde::Serialize;

    /// JSON (de)serialization error.
    #[derive(Debug)]
    pub struct Error(pub String);

    impl std::fmt::Display for Error {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "{}", self.0)
        }
    }
    impl std::error::Error for Error {}

    /// Serialize any `Serialize` value to pretty JSON.
    pub fn to_string_pretty<T: Serialize>(value: &T) -> Result<String, Error> {
        let v = super::json_value::to_value(value)?;
        Ok(v.pretty(0))
    }

    /// Serialize any `Serialize` value to compact single-line JSON — the
    /// JSONL form used by batch spec files.
    pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
        let v = super::json_value::to_value(value)?;
        Ok(v.compact())
    }

    /// Deserialize any `DeserializeOwned` value from JSON text.
    pub fn from_str<T: DeserializeOwned>(s: &str) -> Result<T, Error> {
        let v = super::json_value::parse(s)?;
        super::json_value::from_value(v)
    }
}

/// A tiny JSON value tree plus serde bridges.
pub mod json_value {
    use super::serde_json_error::Error;
    use serde::de::DeserializeOwned;
    use serde::ser::{self, Serialize};
    use std::collections::BTreeMap;
    use std::fmt::Write as _;

    /// JSON value.
    #[derive(Debug, Clone, PartialEq)]
    pub enum Value {
        /// `null`
        Null,
        /// `true` / `false`
        Bool(bool),
        /// Any finite number (stored as f64; u64 kept exact up to 2^53).
        Num(f64),
        /// String.
        Str(String),
        /// Array.
        Arr(Vec<Value>),
        /// Object (sorted keys for determinism).
        Obj(BTreeMap<String, Value>),
    }

    impl Value {
        /// Render with 2-space indentation.
        pub fn pretty(&self, indent: usize) -> String {
            self.render(Some(indent))
        }

        /// Render on one line with no whitespace (JSONL-friendly).
        pub fn compact(&self) -> String {
            self.render(None)
        }

        /// The single renderer behind both styles: `Some(level)` pretty
        /// prints at that indentation depth, `None` packs one line.
        fn render(&self, indent: Option<usize>) -> String {
            let inner = |v: &Value| v.render(indent.map(|i| i + 1));
            // (open, item prefix, item separator, close) per style.
            let seams = |open: char, close: char| match indent {
                Some(i) => (
                    format!("{open}\n"),
                    "  ".repeat(i + 1),
                    ",\n".to_string(),
                    format!("\n{}{close}", "  ".repeat(i)),
                ),
                None => (open.to_string(), String::new(), ",".to_string(), close.to_string()),
            };
            match self {
                Value::Null => "null".into(),
                Value::Bool(b) => b.to_string(),
                Value::Num(x) => format_number(*x),
                Value::Str(s) => escape(s),
                Value::Arr(items) => {
                    if items.is_empty() {
                        return "[]".into();
                    }
                    let (open, pad, sep, close) = seams('[', ']');
                    let body: Vec<String> =
                        items.iter().map(|v| format!("{pad}{}", inner(v))).collect();
                    format!("{open}{}{close}", body.join(&sep))
                }
                Value::Obj(map) => {
                    if map.is_empty() {
                        return "{}".into();
                    }
                    let (open, pad, sep, close) = seams('{', '}');
                    let colon = if indent.is_some() { ": " } else { ":" };
                    let body: Vec<String> = map
                        .iter()
                        .map(|(k, v)| format!("{pad}{}{colon}{}", escape(k), inner(v)))
                        .collect();
                    format!("{open}{}{close}", body.join(&sep))
                }
            }
        }
    }

    fn format_number(x: f64) -> String {
        if x.fract() == 0.0 && x.abs() < 9e15 {
            format!("{}", x as i64)
        } else {
            let mut s = String::new();
            write!(s, "{x:?}").expect("write to string");
            s
        }
    }

    fn escape(s: &str) -> String {
        let mut out = String::with_capacity(s.len() + 2);
        out.push('"');
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => {
                    out.push_str(&format!("\\u{:04x}", c as u32));
                }
                c => out.push(c),
            }
        }
        out.push('"');
        out
    }

    // -- serializer: T -> Value ------------------------------------------

    /// Convert any `Serialize` into a [`Value`].
    pub fn to_value<T: Serialize>(value: &T) -> Result<Value, Error> {
        value.serialize(ValueSer)
    }

    struct ValueSer;

    macro_rules! ser_num {
        ($($f:ident: $t:ty),*) => {$(
            fn $f(self, v: $t) -> Result<Value, Error> { Ok(Value::Num(v as f64)) }
        )*}
    }

    impl ser::Serializer for ValueSer {
        type Ok = Value;
        type Error = Error;
        type SerializeSeq = SeqSer;
        type SerializeTuple = SeqSer;
        type SerializeTupleStruct = SeqSer;
        type SerializeTupleVariant = TupleVariantSer;
        type SerializeMap = MapSer;
        type SerializeStruct = StructSer;
        type SerializeStructVariant = StructVariantSer;

        fn serialize_bool(self, v: bool) -> Result<Value, Error> {
            Ok(Value::Bool(v))
        }
        ser_num!(serialize_i8: i8, serialize_i16: i16, serialize_i32: i32, serialize_i64: i64,
                 serialize_u8: u8, serialize_u16: u16, serialize_u32: u32, serialize_u64: u64,
                 serialize_f32: f32);
        fn serialize_f64(self, v: f64) -> Result<Value, Error> {
            if v.is_finite() {
                Ok(Value::Num(v))
            } else {
                Err(Error(format!("non-finite number {v} not representable in JSON")))
            }
        }
        fn serialize_char(self, v: char) -> Result<Value, Error> {
            Ok(Value::Str(v.to_string()))
        }
        fn serialize_str(self, v: &str) -> Result<Value, Error> {
            Ok(Value::Str(v.to_string()))
        }
        fn serialize_bytes(self, v: &[u8]) -> Result<Value, Error> {
            Ok(Value::Arr(v.iter().map(|b| Value::Num(*b as f64)).collect()))
        }
        fn serialize_none(self) -> Result<Value, Error> {
            Ok(Value::Null)
        }
        fn serialize_some<T: Serialize + ?Sized>(self, value: &T) -> Result<Value, Error> {
            value.serialize(ValueSer)
        }
        fn serialize_unit(self) -> Result<Value, Error> {
            Ok(Value::Null)
        }
        fn serialize_unit_struct(self, _name: &'static str) -> Result<Value, Error> {
            Ok(Value::Null)
        }
        fn serialize_unit_variant(
            self,
            _name: &'static str,
            _idx: u32,
            variant: &'static str,
        ) -> Result<Value, Error> {
            Ok(Value::Str(variant.to_string()))
        }
        fn serialize_newtype_struct<T: Serialize + ?Sized>(
            self,
            _name: &'static str,
            value: &T,
        ) -> Result<Value, Error> {
            value.serialize(ValueSer)
        }
        fn serialize_newtype_variant<T: Serialize + ?Sized>(
            self,
            _name: &'static str,
            _idx: u32,
            variant: &'static str,
            value: &T,
        ) -> Result<Value, Error> {
            let mut map = BTreeMap::new();
            map.insert(variant.to_string(), value.serialize(ValueSer)?);
            Ok(Value::Obj(map))
        }
        fn serialize_seq(self, len: Option<usize>) -> Result<SeqSer, Error> {
            Ok(SeqSer { items: Vec::with_capacity(len.unwrap_or(0)) })
        }
        fn serialize_tuple(self, len: usize) -> Result<SeqSer, Error> {
            self.serialize_seq(Some(len))
        }
        fn serialize_tuple_struct(self, _name: &'static str, len: usize) -> Result<SeqSer, Error> {
            self.serialize_seq(Some(len))
        }
        fn serialize_tuple_variant(
            self,
            _name: &'static str,
            _idx: u32,
            variant: &'static str,
            len: usize,
        ) -> Result<TupleVariantSer, Error> {
            Ok(TupleVariantSer { variant, items: Vec::with_capacity(len) })
        }
        fn serialize_map(self, _len: Option<usize>) -> Result<MapSer, Error> {
            Ok(MapSer { map: BTreeMap::new(), key: None })
        }
        fn serialize_struct(self, _name: &'static str, _len: usize) -> Result<StructSer, Error> {
            Ok(StructSer { map: BTreeMap::new() })
        }
        fn serialize_struct_variant(
            self,
            _name: &'static str,
            _idx: u32,
            variant: &'static str,
            _len: usize,
        ) -> Result<StructVariantSer, Error> {
            Ok(StructVariantSer { variant, map: BTreeMap::new() })
        }
    }

    /// Sequence serializer.
    pub struct SeqSer {
        items: Vec<Value>,
    }
    impl ser::SerializeSeq for SeqSer {
        type Ok = Value;
        type Error = Error;
        fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Error> {
            self.items.push(value.serialize(ValueSer)?);
            Ok(())
        }
        fn end(self) -> Result<Value, Error> {
            Ok(Value::Arr(self.items))
        }
    }
    impl ser::SerializeTuple for SeqSer {
        type Ok = Value;
        type Error = Error;
        fn serialize_element<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Error> {
            ser::SerializeSeq::serialize_element(self, value)
        }
        fn end(self) -> Result<Value, Error> {
            ser::SerializeSeq::end(self)
        }
    }
    impl ser::SerializeTupleStruct for SeqSer {
        type Ok = Value;
        type Error = Error;
        fn serialize_field<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Error> {
            ser::SerializeSeq::serialize_element(self, value)
        }
        fn end(self) -> Result<Value, Error> {
            ser::SerializeSeq::end(self)
        }
    }

    /// Tuple-variant serializer (`{"Variant": [..]}`).
    pub struct TupleVariantSer {
        variant: &'static str,
        items: Vec<Value>,
    }
    impl ser::SerializeTupleVariant for TupleVariantSer {
        type Ok = Value;
        type Error = Error;
        fn serialize_field<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Error> {
            self.items.push(value.serialize(ValueSer)?);
            Ok(())
        }
        fn end(self) -> Result<Value, Error> {
            let mut map = BTreeMap::new();
            map.insert(self.variant.to_string(), Value::Arr(self.items));
            Ok(Value::Obj(map))
        }
    }

    /// Map serializer (string keys only).
    pub struct MapSer {
        map: BTreeMap<String, Value>,
        key: Option<String>,
    }
    impl ser::SerializeMap for MapSer {
        type Ok = Value;
        type Error = Error;
        fn serialize_key<T: Serialize + ?Sized>(&mut self, key: &T) -> Result<(), Error> {
            match key.serialize(ValueSer)? {
                Value::Str(s) => {
                    self.key = Some(s);
                    Ok(())
                }
                other => Err(Error(format!("JSON object keys must be strings, got {other:?}"))),
            }
        }
        fn serialize_value<T: Serialize + ?Sized>(&mut self, value: &T) -> Result<(), Error> {
            let key = self.key.take().ok_or_else(|| Error("value before key".into()))?;
            self.map.insert(key, value.serialize(ValueSer)?);
            Ok(())
        }
        fn end(self) -> Result<Value, Error> {
            Ok(Value::Obj(self.map))
        }
    }

    /// Struct serializer.
    pub struct StructSer {
        map: BTreeMap<String, Value>,
    }
    impl ser::SerializeStruct for StructSer {
        type Ok = Value;
        type Error = Error;
        fn serialize_field<T: Serialize + ?Sized>(
            &mut self,
            key: &'static str,
            value: &T,
        ) -> Result<(), Error> {
            self.map.insert(key.to_string(), value.serialize(ValueSer)?);
            Ok(())
        }
        fn end(self) -> Result<Value, Error> {
            Ok(Value::Obj(self.map))
        }
    }

    /// Struct-variant serializer (`{"Variant": {..}}`).
    pub struct StructVariantSer {
        variant: &'static str,
        map: BTreeMap<String, Value>,
    }
    impl ser::SerializeStructVariant for StructVariantSer {
        type Ok = Value;
        type Error = Error;
        fn serialize_field<T: Serialize + ?Sized>(
            &mut self,
            key: &'static str,
            value: &T,
        ) -> Result<(), Error> {
            self.map.insert(key.to_string(), value.serialize(ValueSer)?);
            Ok(())
        }
        fn end(self) -> Result<Value, Error> {
            let mut outer = BTreeMap::new();
            outer.insert(self.variant.to_string(), Value::Obj(self.map));
            Ok(Value::Obj(outer))
        }
    }

    impl ser::Error for Error {
        fn custom<T: std::fmt::Display>(msg: T) -> Self {
            Error(msg.to_string())
        }
    }
    impl serde::de::Error for Error {
        fn custom<T: std::fmt::Display>(msg: T) -> Self {
            Error(msg.to_string())
        }
    }

    // -- parser: text -> Value -------------------------------------------

    /// Parse JSON text into a [`Value`].
    pub fn parse(s: &str) -> Result<Value, Error> {
        let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(Error(format!("trailing characters at byte {}", p.pos)));
        }
        Ok(v)
    }

    struct Parser<'a> {
        bytes: &'a [u8],
        pos: usize,
    }

    impl Parser<'_> {
        fn skip_ws(&mut self) {
            while self.pos < self.bytes.len()
                && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
            {
                self.pos += 1;
            }
        }
        fn peek(&self) -> Option<u8> {
            self.bytes.get(self.pos).copied()
        }
        fn expect(&mut self, c: u8) -> Result<(), Error> {
            if self.peek() == Some(c) {
                self.pos += 1;
                Ok(())
            } else {
                Err(Error(format!("expected `{}` at byte {}", c as char, self.pos)))
            }
        }
        fn literal(&mut self, lit: &str) -> bool {
            if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
                self.pos += lit.len();
                true
            } else {
                false
            }
        }
        fn value(&mut self) -> Result<Value, Error> {
            self.skip_ws();
            match self.peek() {
                Some(b'n') if self.literal("null") => Ok(Value::Null),
                Some(b't') if self.literal("true") => Ok(Value::Bool(true)),
                Some(b'f') if self.literal("false") => Ok(Value::Bool(false)),
                Some(b'"') => Ok(Value::Str(self.string()?)),
                Some(b'[') => {
                    self.pos += 1;
                    let mut items = Vec::new();
                    self.skip_ws();
                    if self.peek() == Some(b']') {
                        self.pos += 1;
                        return Ok(Value::Arr(items));
                    }
                    loop {
                        items.push(self.value()?);
                        self.skip_ws();
                        match self.peek() {
                            Some(b',') => {
                                self.pos += 1;
                            }
                            Some(b']') => {
                                self.pos += 1;
                                break;
                            }
                            _ => return Err(Error(format!("expected , or ] at byte {}", self.pos))),
                        }
                    }
                    Ok(Value::Arr(items))
                }
                Some(b'{') => {
                    self.pos += 1;
                    let mut map = BTreeMap::new();
                    self.skip_ws();
                    if self.peek() == Some(b'}') {
                        self.pos += 1;
                        return Ok(Value::Obj(map));
                    }
                    loop {
                        self.skip_ws();
                        let key = self.string()?;
                        self.skip_ws();
                        self.expect(b':')?;
                        let val = self.value()?;
                        map.insert(key, val);
                        self.skip_ws();
                        match self.peek() {
                            Some(b',') => {
                                self.pos += 1;
                            }
                            Some(b'}') => {
                                self.pos += 1;
                                break;
                            }
                            _ => return Err(Error(format!("expected , or }} at byte {}", self.pos))),
                        }
                    }
                    Ok(Value::Obj(map))
                }
                Some(c) if c == b'-' || c.is_ascii_digit() => {
                    let start = self.pos;
                    while let Some(c) = self.peek() {
                        if c.is_ascii_digit()
                            || matches!(c, b'-' | b'+' | b'.' | b'e' | b'E')
                        {
                            self.pos += 1;
                        } else {
                            break;
                        }
                    }
                    let text = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|e| Error(e.to_string()))?;
                    text.parse::<f64>().map(Value::Num).map_err(|e| Error(e.to_string()))
                }
                _ => Err(Error(format!("unexpected character at byte {}", self.pos))),
            }
        }
        fn string(&mut self) -> Result<String, Error> {
            self.expect(b'"')?;
            let mut out = String::new();
            loop {
                match self.peek() {
                    None => return Err(Error("unterminated string".into())),
                    Some(b'"') => {
                        self.pos += 1;
                        return Ok(out);
                    }
                    Some(b'\\') => {
                        self.pos += 1;
                        match self.peek() {
                            Some(b'"') => out.push('"'),
                            Some(b'\\') => out.push('\\'),
                            Some(b'/') => out.push('/'),
                            Some(b'n') => out.push('\n'),
                            Some(b'r') => out.push('\r'),
                            Some(b't') => out.push('\t'),
                            Some(b'u') => {
                                if self.pos + 4 >= self.bytes.len() {
                                    return Err(Error("truncated \\u escape".into()));
                                }
                                let hex =
                                    std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                        .map_err(|e| Error(e.to_string()))?;
                                let code = u32::from_str_radix(hex, 16)
                                    .map_err(|e| Error(e.to_string()))?;
                                out.push(
                                    char::from_u32(code)
                                        .ok_or_else(|| Error("invalid \\u escape".into()))?,
                                );
                                self.pos += 4;
                            }
                            other => {
                                return Err(Error(format!("invalid escape {other:?}")));
                            }
                        }
                        self.pos += 1;
                    }
                    Some(_) => {
                        // Consume one UTF-8 character.
                        let rest = std::str::from_utf8(&self.bytes[self.pos..])
                            .map_err(|e| Error(e.to_string()))?;
                        let c = rest.chars().next().expect("non-empty");
                        out.push(c);
                        self.pos += c.len_utf8();
                    }
                }
            }
        }
    }

    // -- deserializer: Value -> T ------------------------------------------

    /// Convert a [`Value`] into any `DeserializeOwned`.
    pub fn from_value<T: DeserializeOwned>(v: Value) -> Result<T, Error> {
        T::deserialize(ValueDe(v))
    }

    struct ValueDe(Value);

    use serde::de::{self, IntoDeserializer, Visitor};

    impl<'de> IntoDeserializer<'de, Error> for ValueDe {
        type Deserializer = ValueDe;
        fn into_deserializer(self) -> ValueDe {
            self
        }
    }

    impl<'de> de::Deserializer<'de> for ValueDe {
        type Error = Error;

        fn deserialize_any<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Error> {
            match self.0 {
                Value::Null => visitor.visit_unit(),
                Value::Bool(b) => visitor.visit_bool(b),
                Value::Num(x) => {
                    if x.fract() == 0.0 && x >= 0.0 && x <= u64::MAX as f64 {
                        visitor.visit_u64(x as u64)
                    } else if x.fract() == 0.0 && x < 0.0 && x >= i64::MIN as f64 {
                        visitor.visit_i64(x as i64)
                    } else {
                        visitor.visit_f64(x)
                    }
                }
                Value::Str(s) => visitor.visit_string(s),
                Value::Arr(items) => {
                    visitor.visit_seq(de::value::SeqDeserializer::new(items.into_iter().map(ValueDe)))
                }
                Value::Obj(map) => visitor.visit_map(de::value::MapDeserializer::new(
                    map.into_iter().map(|(k, v)| (k, ValueDe(v))),
                )),
            }
        }

        fn deserialize_f64<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Error> {
            match self.0 {
                Value::Num(x) => visitor.visit_f64(x),
                other => Err(Error(format!("expected number, got {other:?}"))),
            }
        }

        fn deserialize_option<V: Visitor<'de>>(self, visitor: V) -> Result<V::Value, Error> {
            match self.0 {
                Value::Null => visitor.visit_none(),
                v => visitor.visit_some(ValueDe(v)),
            }
        }

        fn deserialize_enum<V: Visitor<'de>>(
            self,
            _name: &'static str,
            _variants: &'static [&'static str],
            visitor: V,
        ) -> Result<V::Value, Error> {
            match self.0 {
                Value::Str(s) => visitor.visit_enum(s.into_deserializer()),
                Value::Obj(map) if map.len() == 1 => {
                    let (variant, inner) = map.into_iter().next().expect("len 1");
                    visitor.visit_enum(EnumDe { variant, inner })
                }
                other => Err(Error(format!("cannot deserialize enum from {other:?}"))),
            }
        }

        fn deserialize_newtype_struct<V: Visitor<'de>>(
            self,
            _name: &'static str,
            visitor: V,
        ) -> Result<V::Value, Error> {
            visitor.visit_newtype_struct(self)
        }

        serde::forward_to_deserialize_any! {
            bool i8 i16 i32 i64 i128 u8 u16 u32 u64 u128 f32 char str string
            bytes byte_buf unit unit_struct seq tuple
            tuple_struct map struct identifier ignored_any
        }
    }

    struct EnumDe {
        variant: String,
        inner: Value,
    }

    impl<'de> de::EnumAccess<'de> for EnumDe {
        type Error = Error;
        type Variant = VariantDe;
        fn variant_seed<V: de::DeserializeSeed<'de>>(
            self,
            seed: V,
        ) -> Result<(V::Value, VariantDe), Error> {
            let v = seed.deserialize(self.variant.into_deserializer())?;
            Ok((v, VariantDe { inner: self.inner }))
        }
    }

    struct VariantDe {
        inner: Value,
    }

    impl<'de> de::VariantAccess<'de> for VariantDe {
        type Error = Error;
        fn unit_variant(self) -> Result<(), Error> {
            match self.inner {
                Value::Null => Ok(()),
                other => Err(Error(format!("expected unit variant, got {other:?}"))),
            }
        }
        fn newtype_variant_seed<T: de::DeserializeSeed<'de>>(
            self,
            seed: T,
        ) -> Result<T::Value, Error> {
            seed.deserialize(ValueDe(self.inner))
        }
        fn tuple_variant<V: Visitor<'de>>(
            self,
            _len: usize,
            visitor: V,
        ) -> Result<V::Value, Error> {
            match self.inner {
                Value::Arr(items) => {
                    visitor.visit_seq(de::value::SeqDeserializer::new(items.into_iter().map(ValueDe)))
                }
                other => Err(Error(format!("expected tuple variant, got {other:?}"))),
            }
        }
        fn struct_variant<V: Visitor<'de>>(
            self,
            _fields: &'static [&'static str],
            visitor: V,
        ) -> Result<V::Value, Error> {
            match self.inner {
                Value::Obj(map) => visitor.visit_map(de::value::MapDeserializer::new(
                    map.into_iter().map(|(k, v)| (k, ValueDe(v))),
                )),
                other => Err(Error(format!("expected struct variant, got {other:?}"))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::section2_example;
    use crate::mapping::{Interval, Mapping};

    #[test]
    fn instance_roundtrip() {
        let (apps, platform) = section2_example();
        let mapping = Mapping::new()
            .with(Interval::new(0, 0, 2), 0, 0)
            .with(Interval::new(1, 0, 3), 2, 0);
        let inst = Instance::new("section 2 example", apps, platform)
            .with_thresholds(Thresholds::uniform_period(2.0, 2).with_energy(50.0))
            .with_mapping("energy-minimal", mapping);
        let json = inst.to_json().expect("serializes");
        let back = Instance::from_json(&json).expect("parses");
        assert_eq!(inst, back);
    }

    #[test]
    fn json_values_parse_and_print() {
        use super::json_value::{parse, Value};
        let v = parse(r#"{"a": [1, 2.5, -3], "b": "x\ny", "c": null, "d": true}"#).unwrap();
        match &v {
            Value::Obj(m) => {
                assert_eq!(m.len(), 4);
                assert_eq!(m["c"], Value::Null);
                assert_eq!(m["d"], Value::Bool(true));
                assert_eq!(m["b"], Value::Str("x\ny".into()));
            }
            _ => panic!("expected object"),
        }
        // Round-trip through pretty printing.
        let text = v.pretty(0);
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn bad_json_rejected() {
        assert!(Instance::from_json("not json").is_err());
        assert!(Instance::from_json("{}").is_err());
        use super::json_value::parse;
        assert!(parse("[1, 2").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("tru").is_err());
        assert!(parse("[1] trailing").is_err());
    }

    #[test]
    fn version_mismatch_rejected() {
        let (apps, platform) = section2_example();
        let mut inst = Instance::new("v-test", apps, platform);
        inst.version = 99;
        let json = inst.to_json().unwrap();
        match Instance::from_json(&json) {
            Err(InstanceError::Version { found: 99 }) => {}
            other => panic!("expected version error, got {other:?}"),
        }
    }

    #[test]
    fn embedded_invalid_mapping_rejected() {
        let (apps, platform) = section2_example();
        let broken = Mapping::new().with(Interval::new(0, 0, 2), 0, 0); // app 1 unmapped
        let inst = Instance::new("bad", apps, platform).with_mapping("broken", broken);
        let json = inst.to_json().unwrap();
        assert!(matches!(
            Instance::from_json(&json),
            Err(InstanceError::InvalidMapping { .. })
        ));
    }

    #[test]
    fn unicode_and_escapes_survive() {
        use super::json_value::{parse, Value};
        let v = Value::Str("héllo \"wörld\" \t ∆".into());
        let text = v.pretty(0);
        assert_eq!(parse(&text).unwrap(), v);
        let v = parse(r#""Aé""#).unwrap();
        assert_eq!(v, Value::Str("Aé".into()));
    }
}
