//! Performance evaluation of a mapping (Section 3.4 of the paper).
//!
//! * **Period** — the critical resource's cycle-time. Under the *overlap*
//!   model (multi-threaded communication, Eq. 3) the cycle-time of a
//!   processor is the max of its incoming-communication time, computation
//!   time and outgoing-communication time; under the *no-overlap* model
//!   (single-threaded, Eq. 4) it is their sum.
//! * **Latency** — the end-to-end time of one data set (Eq. 5); it is
//!   identical in both communication models.
//! * **Global objectives** — `X = max_a W_a · X_a` (Eq. 6).
//! * **Energy** — delegated to [`crate::energy`].

use crate::application::AppSet;
use crate::energy::EnergyModel;
use crate::mapping::Mapping;
use crate::num::fmax;
use crate::platform::Platform;
use serde::{Deserialize, Serialize};

/// Communication model (Section 3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CommModel {
    /// Send, compute and receive proceed in parallel (multi-threaded
    /// communication libraries, e.g. MPICH2). Cycle-time = max of the three
    /// operation times (Eq. 3).
    Overlap,
    /// The three operations are serialized (single-threaded programs).
    /// Cycle-time = sum of the three operation times (Eq. 4).
    NoOverlap,
}

impl CommModel {
    /// Both models, convenient for exhaustive tests.
    pub const ALL: [CommModel; 2] = [CommModel::Overlap, CommModel::NoOverlap];

    /// Combine the three operation times per the model.
    #[inline]
    pub fn combine(self, incoming: f64, compute: f64, outgoing: f64) -> f64 {
        match self {
            CommModel::Overlap => fmax(incoming, fmax(compute, outgoing)),
            CommModel::NoOverlap => incoming + compute + outgoing,
        }
    }
}

/// Detailed timing of one interval assignment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CycleBreakdown {
    /// Time of the incoming communication `δ^{d_j - 1} / b`.
    pub incoming: f64,
    /// Computation time `Σ_{i∈I_j} w_i / s`.
    pub compute: f64,
    /// Time of the outgoing communication `δ^{e_j} / b`.
    pub outgoing: f64,
}

impl CycleBreakdown {
    /// Cycle-time under the given communication model.
    #[inline]
    pub fn cycle_time(&self, model: CommModel) -> f64 {
        model.combine(self.incoming, self.compute, self.outgoing)
    }
}

/// Full evaluation of a mapping.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Evaluation {
    /// Per-application period `T_a`.
    pub periods: Vec<f64>,
    /// Per-application latency `L_a`.
    pub latencies: Vec<f64>,
    /// Global weighted period `max_a W_a · T_a`.
    pub period: f64,
    /// Global weighted latency `max_a W_a · L_a`.
    pub latency: f64,
    /// Total energy (power) consumed per time unit by enrolled processors.
    pub energy: f64,
}

/// Evaluator binding an application set, a platform and an energy model.
pub struct Evaluator<'m> {
    apps: &'m AppSet,
    platform: &'m Platform,
    energy: EnergyModel,
}

impl<'m> Evaluator<'m> {
    /// Build an evaluator with the default energy model (`α = 2`,
    /// Section 2's convention).
    pub fn new(apps: &'m AppSet, platform: &'m Platform) -> Self {
        Evaluator { apps, platform, energy: EnergyModel::default() }
    }

    /// Use a custom energy model.
    pub fn with_energy(mut self, energy: EnergyModel) -> Self {
        self.energy = energy;
        self
    }

    /// The bound application set.
    pub fn apps(&self) -> &AppSet {
        self.apps
    }

    /// The bound platform.
    pub fn platform(&self) -> &Platform {
        self.platform
    }

    /// The bound energy model.
    pub fn energy_model(&self) -> EnergyModel {
        self.energy
    }

    /// Timing breakdown of each interval of application `app`'s chain,
    /// in chain order.
    pub fn chain_breakdown(&self, mapping: &Mapping, app: usize) -> Vec<CycleBreakdown> {
        let chain = mapping.app_chain(app);
        let application = &self.apps.apps[app];
        let m = chain.len();
        let mut out = Vec::with_capacity(m);
        for (j, asg) in chain.iter().enumerate() {
            let speed = self.platform.procs[asg.proc].speed(asg.mode);
            let din = application.input_of(asg.interval.first);
            let dout = application.output_of(asg.interval.last);
            let incoming = if j == 0 {
                self.platform.transfer_time_input(app, asg.proc, din)
            } else {
                self.platform.transfer_time_inter(app, chain[j - 1].proc, asg.proc, din)
            };
            let outgoing = if j == m - 1 {
                self.platform.transfer_time_output(app, asg.proc, dout)
            } else {
                self.platform.transfer_time_inter(app, asg.proc, chain[j + 1].proc, dout)
            };
            out.push(CycleBreakdown {
                incoming,
                compute: application.interval_work(asg.interval.first, asg.interval.last) / speed,
                outgoing,
            });
        }
        out
    }

    /// Period `T_a` of application `app` (Eqs. 3 / 4), unweighted.
    pub fn app_period(&self, mapping: &Mapping, app: usize, model: CommModel) -> f64 {
        self.chain_breakdown(mapping, app)
            .iter()
            .map(|c| c.cycle_time(model))
            .fold(0.0, fmax)
    }

    /// Latency `L_a` of application `app` (Eq. 5), unweighted. Identical in
    /// both communication models.
    pub fn app_latency(&self, mapping: &Mapping, app: usize) -> f64 {
        let breakdown = self.chain_breakdown(mapping, app);
        let mut latency = match breakdown.first() {
            Some(first) => first.incoming,
            None => return f64::INFINITY,
        };
        for c in &breakdown {
            latency += c.compute + c.outgoing;
        }
        latency
    }

    /// Global weighted period `max_a W_a · T_a` (Eq. 6).
    pub fn period(&self, mapping: &Mapping, model: CommModel) -> f64 {
        (0..self.apps.a())
            .map(|a| self.apps.apps[a].weight * self.app_period(mapping, a, model))
            .fold(0.0, fmax)
    }

    /// Global weighted latency `max_a W_a · L_a` (Eq. 6).
    pub fn latency(&self, mapping: &Mapping) -> f64 {
        (0..self.apps.a())
            .map(|a| self.apps.apps[a].weight * self.app_latency(mapping, a))
            .fold(0.0, fmax)
    }

    /// Total energy per time unit of enrolled processors (Section 3.5).
    pub fn energy(&self, mapping: &Mapping) -> f64 {
        self.energy.mapping_energy(mapping, self.platform)
    }

    /// Evaluate everything at once.
    pub fn evaluate(&self, mapping: &Mapping, model: CommModel) -> Evaluation {
        let periods: Vec<f64> =
            (0..self.apps.a()).map(|a| self.app_period(mapping, a, model)).collect();
        let latencies: Vec<f64> =
            (0..self.apps.a()).map(|a| self.app_latency(mapping, a)).collect();
        let period = periods
            .iter()
            .zip(&self.apps.apps)
            .map(|(t, app)| app.weight * t)
            .fold(0.0, fmax);
        let latency = latencies
            .iter()
            .zip(&self.apps.apps)
            .map(|(l, app)| app.weight * l)
            .fold(0.0, fmax);
        Evaluation { periods, latencies, period, latency, energy: self.energy(mapping) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::application::Application;
    use crate::mapping::Interval;
    use crate::platform::{Platform, Processor};

    /// The Section 2 motivating example: two applications, three bi-modal
    /// processors, all bandwidths 1, energy = s².
    pub fn example() -> (AppSet, Platform) {
        let app1 = Application::from_pairs(1.0, &[(3.0, 3.0), (2.0, 2.0), (1.0, 0.0)]);
        let app2 = Application::from_pairs(0.0, &[(2.0, 1.0), (6.0, 1.0), (4.0, 1.0), (2.0, 1.0)]);
        let apps = AppSet::new(vec![app1, app2]).unwrap();
        let platform = Platform::comm_homogeneous(
            vec![
                Processor::new(vec![3.0, 6.0]).unwrap(),
                Processor::new(vec![6.0, 8.0]).unwrap(),
                Processor::new(vec![1.0, 6.0]).unwrap(),
            ],
            1.0,
        )
        .unwrap();
        (apps, platform)
    }

    #[test]
    fn section2_period_optimal_mapping() {
        // App1 entirely on P3 (index 2) at speed 6; App2 first half on P2
        // (index 1) at speed 8, second half on P1 (index 0) at speed 6.
        let (apps, pf) = example();
        let ev = Evaluator::new(&apps, &pf);
        let m = Mapping::new()
            .with(Interval::new(0, 0, 2), 2, 1)
            .with(Interval::new(1, 0, 1), 1, 1)
            .with(Interval::new(1, 2, 3), 0, 1);
        m.validate(&apps, &pf).unwrap();
        // Eq. (1) of the paper: global period 1 under the overlap model.
        assert!((ev.period(&m, CommModel::Overlap) - 1.0).abs() < 1e-12);
        assert!((ev.app_period(&m, 0, CommModel::Overlap) - 1.0).abs() < 1e-12);
        assert!((ev.app_period(&m, 1, CommModel::Overlap) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn section2_latency_optimal_mapping() {
        // App1 on P1 (speed 6), App2 on P2 (speed 8): global latency 2.75
        // (Eq. 2 of the paper).
        let (apps, pf) = example();
        let ev = Evaluator::new(&apps, &pf);
        let m = Mapping::new()
            .with(Interval::new(0, 0, 2), 0, 1)
            .with(Interval::new(1, 0, 3), 1, 1);
        m.validate(&apps, &pf).unwrap();
        let l0 = ev.app_latency(&m, 0); // 1/1 + 6/6 + 0/1 = 2
        let l1 = ev.app_latency(&m, 1); // 0/1 + 14/8 + 1/1 = 2.75
        assert!((l0 - 2.0).abs() < 1e-12);
        assert!((l1 - 2.75).abs() < 1e-12);
        assert!((ev.latency(&m) - 2.75).abs() < 1e-12);
    }

    #[test]
    fn section2_energy_minimal_mapping_period_14() {
        // App1 on P1 in lowest mode (3), App2 on P3 in lowest mode (1):
        // energy 3² + 1² = 10, period 14.
        let (apps, pf) = example();
        let ev = Evaluator::new(&apps, &pf);
        let m = Mapping::new()
            .with(Interval::new(0, 0, 2), 0, 0)
            .with(Interval::new(1, 0, 3), 2, 0);
        m.validate(&apps, &pf).unwrap();
        assert!((ev.energy(&m) - 10.0).abs() < 1e-12);
        assert!((ev.period(&m, CommModel::Overlap) - 14.0).abs() < 1e-12);
    }

    #[test]
    fn section2_energy_period_tradeoff() {
        // First modes everywhere: app1 on P1 (3), app2 stages 1-3 on P2 (6),
        // stage 4 on P3 (1): period 2, energy 3² + 6² + 1² = 46.
        let (apps, pf) = example();
        let ev = Evaluator::new(&apps, &pf);
        let m = Mapping::new()
            .with(Interval::new(0, 0, 2), 0, 0)
            .with(Interval::new(1, 0, 2), 1, 0)
            .with(Interval::new(1, 3, 3), 2, 0);
        m.validate(&apps, &pf).unwrap();
        assert!((ev.period(&m, CommModel::Overlap) - 2.0).abs() < 1e-12);
        assert!((ev.energy(&m) - 46.0).abs() < 1e-12);
        // The period-optimal mapping costs 6² + 8² + 6² = 136.
        let fast = Mapping::new()
            .with(Interval::new(0, 0, 2), 2, 1)
            .with(Interval::new(1, 0, 1), 1, 1)
            .with(Interval::new(1, 2, 3), 0, 1);
        assert!((ev.energy(&fast) - 136.0).abs() < 1e-12);
    }

    #[test]
    fn no_overlap_dominates_overlap() {
        let (apps, pf) = example();
        let ev = Evaluator::new(&apps, &pf);
        let m = Mapping::new()
            .with(Interval::new(0, 0, 2), 2, 1)
            .with(Interval::new(1, 0, 1), 1, 1)
            .with(Interval::new(1, 2, 3), 0, 1);
        let t_ov = ev.period(&m, CommModel::Overlap);
        let t_no = ev.period(&m, CommModel::NoOverlap);
        assert!(t_ov <= t_no);
        // Latency is identical under both models by definition (Eq. 5).
        assert_eq!(ev.latency(&m), ev.latency(&m));
    }

    #[test]
    fn weighted_objective_scales() {
        let (mut apps, pf) = example();
        apps.apps[0].weight = 10.0;
        let ev = Evaluator::new(&apps, &pf);
        let m = Mapping::new()
            .with(Interval::new(0, 0, 2), 0, 1)
            .with(Interval::new(1, 0, 3), 1, 1);
        // App1 latency 2 × weight 10 = 20 now dominates app2's 2.75.
        assert!((ev.latency(&m) - 20.0).abs() < 1e-12);
    }

    #[test]
    fn evaluation_struct_is_consistent() {
        let (apps, pf) = example();
        let ev = Evaluator::new(&apps, &pf);
        let m = Mapping::new()
            .with(Interval::new(0, 0, 2), 0, 1)
            .with(Interval::new(1, 0, 3), 1, 1);
        let e = ev.evaluate(&m, CommModel::Overlap);
        assert_eq!(e.periods.len(), 2);
        assert_eq!(e.latencies.len(), 2);
        assert!((e.latency - 2.75).abs() < 1e-12);
        assert!((e.energy - (36.0 + 64.0)).abs() < 1e-12);
    }

    #[test]
    fn breakdown_matches_hand_computation() {
        let (apps, pf) = example();
        let ev = Evaluator::new(&apps, &pf);
        let m = Mapping::new()
            .with(Interval::new(0, 0, 2), 2, 1)
            .with(Interval::new(1, 0, 1), 1, 1)
            .with(Interval::new(1, 2, 3), 0, 1);
        let b0 = ev.chain_breakdown(&m, 0);
        assert_eq!(b0.len(), 1);
        assert!((b0[0].incoming - 1.0).abs() < 1e-12);
        assert!((b0[0].compute - 1.0).abs() < 1e-12);
        assert!((b0[0].outgoing - 0.0).abs() < 1e-12);
        let b1 = ev.chain_breakdown(&m, 1);
        assert_eq!(b1.len(), 2);
        assert!((b1[0].compute - 1.0).abs() < 1e-12); // (2+6)/8
        assert!((b1[1].compute - 1.0).abs() < 1e-12); // (4+2)/6
        assert!((b1[1].outgoing - 1.0).abs() < 1e-12);
    }
}
