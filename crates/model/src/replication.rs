//! Replicated interval mappings — the Section 6 extension.
//!
//! The paper's future work: *"we envision to add replication into the
//! mappings: a stage could be mapped onto several processors, each in
//! charge of different data sets, in order to improve the period, as was
//! investigated in [4]."*
//!
//! Following Benoit & Robert (Algorithmica 2009, reference [4]), a
//! replicated interval is executed by `r ≥ 1` processors in round-robin:
//! replica `j` processes data sets `j, j+r, j+2r, …`. Consequences:
//!
//! * **Period** — each replica sees every `r`-th data set, so the interval
//!   sustains one data set every `cycle / r` time units; with heterogeneous
//!   replica speeds the round-robin is paced by the *slowest* replica
//!   (data sets must leave in order), giving
//!   `T = C(δ_in/b, w/s_min, δ_out/b) / r`.
//! * **Latency** — an individual data set is processed by a single replica,
//!   so replication does not reduce latency; the worst case goes through
//!   the slowest replica.
//! * **Energy** — every enrolled replica pays its full static + dynamic
//!   energy: replication buys throughput with energy, the key trade-off
//!   the benches quantify.

use crate::application::AppSet;
use crate::energy::EnergyModel;
use crate::error::ModelError;
use crate::eval::CommModel;
use crate::mapping::Interval;
use crate::num::fmax;
use crate::platform::Platform;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;

/// One interval replicated over one or more processors.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReplicatedAssignment {
    /// The stage interval.
    pub interval: Interval,
    /// The replica processors (all distinct).
    pub procs: Vec<usize>,
    /// Selected mode per replica (parallel to `procs`).
    pub modes: Vec<usize>,
}

impl ReplicatedAssignment {
    /// Replication factor `r`.
    pub fn r(&self) -> usize {
        self.procs.len()
    }
}

/// A mapping whose intervals may be replicated.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ReplicatedMapping {
    /// All replicated interval assignments.
    pub assignments: Vec<ReplicatedAssignment>,
}

impl ReplicatedMapping {
    /// Empty mapping.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add an assignment.
    pub fn push(&mut self, interval: Interval, procs: Vec<usize>, modes: Vec<usize>) {
        assert_eq!(procs.len(), modes.len(), "one mode per replica");
        self.assignments.push(ReplicatedAssignment { interval, procs, modes });
    }

    /// Builder-style [`push`](Self::push).
    pub fn with(mut self, interval: Interval, procs: Vec<usize>, modes: Vec<usize>) -> Self {
        self.push(interval, procs, modes);
        self
    }

    /// View an ordinary [`crate::mapping::Mapping`] as a replicated mapping
    /// (all factors 1).
    pub fn from_plain(mapping: &crate::mapping::Mapping) -> Self {
        let mut out = Self::new();
        for asg in &mapping.assignments {
            out.push(asg.interval, vec![asg.proc], vec![asg.mode]);
        }
        out
    }

    /// The assignments of application `a`, in chain order.
    pub fn app_chain(&self, app: usize) -> Vec<&ReplicatedAssignment> {
        let mut chain: Vec<&ReplicatedAssignment> =
            self.assignments.iter().filter(|asg| asg.interval.app == app).collect();
        chain.sort_by_key(|asg| asg.interval.first);
        chain
    }

    /// Total number of enrolled processors (over all replicas).
    pub fn enrolled(&self) -> usize {
        self.assignments.iter().map(|a| a.procs.len()).sum()
    }

    /// Validate: coverage/consecutiveness per application, distinct
    /// processors globally, valid modes, `r ≥ 1`.
    pub fn validate(&self, apps: &AppSet, platform: &Platform) -> Result<(), ModelError> {
        let mut used = HashSet::new();
        for asg in &self.assignments {
            if asg.procs.is_empty() {
                return Err(ModelError::InvalidMapping {
                    reason: "an interval needs at least one replica".into(),
                });
            }
            if asg.procs.len() != asg.modes.len() {
                return Err(ModelError::InvalidMapping {
                    reason: "one mode per replica required".into(),
                });
            }
            if asg.interval.app >= apps.a() {
                return Err(ModelError::InvalidMapping {
                    reason: format!("unknown application {}", asg.interval.app),
                });
            }
            let n = apps.apps[asg.interval.app].n();
            if asg.interval.last >= n {
                return Err(ModelError::InvalidMapping {
                    reason: format!("interval out of bounds for application {}", asg.interval.app),
                });
            }
            for (&u, &m) in asg.procs.iter().zip(&asg.modes) {
                if u >= platform.p() {
                    return Err(ModelError::InvalidMapping {
                        reason: format!("unknown processor {u}"),
                    });
                }
                if m >= platform.procs[u].modes() {
                    return Err(ModelError::InvalidMapping {
                        reason: format!("mode {m} out of range for processor {u}"),
                    });
                }
                if !used.insert(u) {
                    return Err(ModelError::InvalidMapping {
                        reason: format!("processor {u} used twice"),
                    });
                }
            }
        }
        for a in 0..apps.a() {
            let chain = self.app_chain(a);
            if chain.is_empty() {
                return Err(ModelError::InvalidMapping {
                    reason: format!("application {a} is not mapped"),
                });
            }
            if chain[0].interval.first != 0
                || chain.last().expect("non-empty").interval.last != apps.apps[a].n() - 1
            {
                return Err(ModelError::InvalidMapping {
                    reason: format!("application {a} not fully covered"),
                });
            }
            for w in chain.windows(2) {
                if w[1].interval.first != w[0].interval.last + 1 {
                    return Err(ModelError::InvalidMapping {
                        reason: format!("application {a}: gap between intervals"),
                    });
                }
            }
        }
        Ok(())
    }
}

/// Evaluator for replicated mappings.
pub struct ReplicatedEvaluator<'m> {
    apps: &'m AppSet,
    platform: &'m Platform,
    energy: EnergyModel,
}

impl<'m> ReplicatedEvaluator<'m> {
    /// Build with the default energy model.
    pub fn new(apps: &'m AppSet, platform: &'m Platform) -> Self {
        ReplicatedEvaluator { apps, platform, energy: EnergyModel::default() }
    }

    /// Slowest replica speed of an assignment.
    fn min_speed(&self, asg: &ReplicatedAssignment) -> f64 {
        asg.procs
            .iter()
            .zip(&asg.modes)
            .map(|(&u, &m)| self.platform.procs[u].speed(m))
            .fold(f64::INFINITY, crate::num::fmin)
    }

    /// Worst-case bandwidth between two replicated assignments (any replica
    /// pair may carry a given data set).
    fn min_bw(&self, app: usize, from: &ReplicatedAssignment, to: &ReplicatedAssignment) -> f64 {
        let mut b = f64::INFINITY;
        for &u in &from.procs {
            for &v in &to.procs {
                b = crate::num::fmin(b, self.platform.bw_inter(app, u, v));
            }
        }
        b
    }

    /// Per-transfer latency of inter-processor edges (a multistage fabric
    /// charges its stage traversal; dedicated links charge nothing).
    fn inter_overhead(&self) -> f64 {
        match &self.platform.topology {
            crate::topology::CommTopology::Multistage(net) => {
                net.traversal_overhead(self.platform.p())
            }
            crate::topology::CommTopology::Dedicated => 0.0,
        }
    }

    /// Inter-processor transfer time with the gated overhead add (the
    /// zero-overhead case stays the bare division, bit for bit).
    fn inter_time(&self, bytes: f64, bw: f64) -> f64 {
        let t = bytes / bw;
        let overhead = self.inter_overhead();
        if overhead != 0.0 {
            t + overhead
        } else {
            t
        }
    }

    /// Period `T_a` of application `app` under replication.
    pub fn app_period(&self, mapping: &ReplicatedMapping, app: usize, model: CommModel) -> f64 {
        let chain = mapping.app_chain(app);
        let application = &self.apps.apps[app];
        let m = chain.len();
        let mut period = 0.0f64;
        for (j, asg) in chain.iter().enumerate() {
            let s = self.min_speed(asg);
            let din = application.input_of(asg.interval.first);
            let dout = application.output_of(asg.interval.last);
            let incoming = if j == 0 {
                let bw = asg
                    .procs
                    .iter()
                    .map(|&u| self.platform.bw_input(app, u))
                    .fold(f64::INFINITY, crate::num::fmin);
                din / bw
            } else {
                self.inter_time(din, self.min_bw(app, chain[j - 1], asg))
            };
            let outgoing = if j == m - 1 {
                let bw = asg
                    .procs
                    .iter()
                    .map(|&u| self.platform.bw_output(app, u))
                    .fold(f64::INFINITY, crate::num::fmin);
                dout / bw
            } else {
                self.inter_time(dout, self.min_bw(app, asg, chain[j + 1]))
            };
            let compute =
                application.interval_work(asg.interval.first, asg.interval.last) / s;
            let cycle = model.combine(incoming, compute, outgoing) / asg.r() as f64;
            period = fmax(period, cycle);
        }
        period
    }

    /// Latency `L_a` (replication does not help; worst replica path).
    pub fn app_latency(&self, mapping: &ReplicatedMapping, app: usize) -> f64 {
        let chain = mapping.app_chain(app);
        let application = &self.apps.apps[app];
        let m = chain.len();
        let mut latency = 0.0;
        for (j, asg) in chain.iter().enumerate() {
            let s = self.min_speed(asg);
            if j == 0 {
                let bw_in = asg
                    .procs
                    .iter()
                    .map(|&u| self.platform.bw_input(app, u))
                    .fold(f64::INFINITY, crate::num::fmin);
                latency += application.input_of(0) / bw_in;
            }
            latency += application.interval_work(asg.interval.first, asg.interval.last) / s;
            let dout = application.output_of(asg.interval.last);
            latency += if j == m - 1 {
                let bw = asg
                    .procs
                    .iter()
                    .map(|&u| self.platform.bw_output(app, u))
                    .fold(f64::INFINITY, crate::num::fmin);
                dout / bw
            } else {
                self.inter_time(dout, self.min_bw(app, asg, chain[j + 1]))
            };
        }
        latency
    }

    /// Global weighted period.
    pub fn period(&self, mapping: &ReplicatedMapping, model: CommModel) -> f64 {
        (0..self.apps.a())
            .map(|a| self.apps.apps[a].weight * self.app_period(mapping, a, model))
            .fold(0.0, fmax)
    }

    /// Global weighted latency.
    pub fn latency(&self, mapping: &ReplicatedMapping) -> f64 {
        (0..self.apps.a())
            .map(|a| self.apps.apps[a].weight * self.app_latency(mapping, a))
            .fold(0.0, fmax)
    }

    /// Total energy: every replica pays.
    pub fn energy(&self, mapping: &ReplicatedMapping) -> f64 {
        mapping
            .assignments
            .iter()
            .flat_map(|asg| asg.procs.iter().zip(&asg.modes))
            .map(|(&u, &m)| self.energy.proc_energy(self.platform, u, m))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::application::Application;
    use crate::eval::Evaluator;
    use crate::mapping::Mapping;
    use crate::platform::Platform;

    fn setup() -> (AppSet, Platform) {
        let app = Application::from_pairs(1.0, &[(8.0, 2.0), (4.0, 1.0)]);
        let apps = AppSet::single(app);
        let pf = Platform::fully_homogeneous(4, vec![1.0, 2.0], 1.0).unwrap();
        (apps, pf)
    }

    #[test]
    fn factor_one_matches_plain_evaluation() {
        let (apps, pf) = setup();
        let plain = Mapping::new()
            .with(Interval::new(0, 0, 0), 0, 1)
            .with(Interval::new(0, 1, 1), 1, 1);
        let repl = ReplicatedMapping::from_plain(&plain);
        repl.validate(&apps, &pf).unwrap();
        let ev = Evaluator::new(&apps, &pf);
        let rev = ReplicatedEvaluator::new(&apps, &pf);
        for model in CommModel::ALL {
            assert_eq!(ev.period(&plain, model), rev.period(&repl, model));
        }
        assert_eq!(ev.latency(&plain), rev.latency(&repl));
        assert_eq!(ev.energy(&plain), rev.energy(&repl));
    }

    #[test]
    fn replication_divides_the_compute_cycle() {
        let (apps, pf) = setup();
        // Interval [0,0] (work 8) on two replicas at speed 2:
        // cycle = max(1, 8/2, 2)/2 = 2.
        let m = ReplicatedMapping::new()
            .with(Interval::new(0, 0, 0), vec![0, 1], vec![1, 1])
            .with(Interval::new(0, 1, 1), vec![2], vec![1]);
        m.validate(&apps, &pf).unwrap();
        let rev = ReplicatedEvaluator::new(&apps, &pf);
        assert!((rev.app_period(&m, 0, CommModel::Overlap) - 2.0).abs() < 1e-12);
        // Unreplicated the same split gives max(4, 2) = 4.
        let plain = ReplicatedMapping::new()
            .with(Interval::new(0, 0, 0), vec![0], vec![1])
            .with(Interval::new(0, 1, 1), vec![2], vec![1]);
        assert!((rev.app_period(&plain, 0, CommModel::Overlap) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn replication_does_not_reduce_latency_but_costs_energy() {
        let (apps, pf) = setup();
        let repl = ReplicatedMapping::new()
            .with(Interval::new(0, 0, 0), vec![0, 1], vec![1, 1])
            .with(Interval::new(0, 1, 1), vec![2], vec![1]);
        let plain = ReplicatedMapping::new()
            .with(Interval::new(0, 0, 0), vec![0], vec![1])
            .with(Interval::new(0, 1, 1), vec![2], vec![1]);
        let rev = ReplicatedEvaluator::new(&apps, &pf);
        assert_eq!(rev.latency(&repl), rev.latency(&plain));
        assert!(rev.energy(&repl) > rev.energy(&plain));
        assert_eq!(rev.energy(&repl), 4.0 + 4.0 + 4.0);
    }

    #[test]
    fn slowest_replica_paces_the_round_robin() {
        let (apps, pf) = setup();
        // Replicas at speeds 2 and 1: min speed 1; cycle = max(1, 8/1, 2)/2 = 4.
        let m = ReplicatedMapping::new()
            .with(Interval::new(0, 0, 0), vec![0, 1], vec![1, 0])
            .with(Interval::new(0, 1, 1), vec![2], vec![1]);
        let rev = ReplicatedEvaluator::new(&apps, &pf);
        assert!((rev.app_period(&m, 0, CommModel::Overlap) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn validation_rejects_replica_reuse_and_bad_shapes() {
        let (apps, pf) = setup();
        let m = ReplicatedMapping::new()
            .with(Interval::new(0, 0, 0), vec![0, 0], vec![1, 1])
            .with(Interval::new(0, 1, 1), vec![2], vec![1]);
        assert!(m.validate(&apps, &pf).is_err());
        let m = ReplicatedMapping::new()
            .with(Interval::new(0, 0, 1), vec![], vec![]);
        assert!(m.validate(&apps, &pf).is_err());
        let mut m = ReplicatedMapping::new();
        m.assignments.push(ReplicatedAssignment {
            interval: Interval::new(0, 0, 1),
            procs: vec![0],
            modes: vec![9],
        });
        assert!(m.validate(&apps, &pf).is_err());
    }

    #[test]
    fn enrolled_counts_all_replicas() {
        let m = ReplicatedMapping::new()
            .with(Interval::new(0, 0, 0), vec![0, 1, 2], vec![0, 0, 0])
            .with(Interval::new(0, 1, 1), vec![3], vec![0]);
        assert_eq!(m.enrolled(), 4);
    }
}
