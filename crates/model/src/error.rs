//! Error type shared across the model crate.

use std::fmt;

/// Errors raised while constructing or validating model objects.
#[derive(Debug, Clone, PartialEq)]
pub enum ModelError {
    /// An application must contain at least one stage.
    EmptyApplication,
    /// Stage computation requirements and data sizes must be finite and
    /// non-negative.
    InvalidStage { app: usize, stage: usize, reason: &'static str },
    /// Application weights `W_a` must be strictly positive (Eq. 6).
    InvalidWeight { app: usize },
    /// A processor needs at least one speed, all strictly positive.
    InvalidProcessor { proc: usize, reason: &'static str },
    /// Bandwidths must be strictly positive and finite.
    InvalidBandwidth { reason: &'static str },
    /// Dimension mismatch between linked structures.
    DimensionMismatch { what: &'static str, expected: usize, found: usize },
    /// A mapping failed structural validation.
    InvalidMapping { reason: String },
    /// A solver table was contaminated by non-finite inputs (NaN stage
    /// data, NaN speeds) and could not be reconstructed consistently.
    NonFiniteData { what: &'static str },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::EmptyApplication => write!(f, "application has no stage"),
            ModelError::InvalidStage { app, stage, reason } => {
                write!(f, "invalid stage S_{}^{}: {}", app, stage, reason)
            }
            ModelError::InvalidWeight { app } => {
                write!(f, "application {} has a non-positive weight", app)
            }
            ModelError::InvalidProcessor { proc, reason } => {
                write!(f, "invalid processor P_{}: {}", proc, reason)
            }
            ModelError::InvalidBandwidth { reason } => write!(f, "invalid bandwidth: {}", reason),
            ModelError::DimensionMismatch { what, expected, found } => {
                write!(f, "dimension mismatch for {}: expected {}, found {}", what, expected, found)
            }
            ModelError::InvalidMapping { reason } => write!(f, "invalid mapping: {}", reason),
            ModelError::NonFiniteData { what } => {
                write!(f, "non-finite data contaminated {}", what)
            }
        }
    }
}

impl std::error::Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = ModelError::InvalidStage { app: 1, stage: 2, reason: "negative work" };
        assert!(e.to_string().contains("S_1^2"));
        let e = ModelError::InvalidMapping { reason: "overlap".into() };
        assert!(e.to_string().contains("overlap"));
    }
}
