//! Target platform (Section 3.2 of the paper).
//!
//! The platform has `p` fully interconnected processors. Every processor
//! `P_u` is *multi-modal*: it owns a discrete speed set
//! `S_u = {s_{u,1}, …, s_{u,m_u}}` (DVFS modes); during the mapping process
//! one speed is selected per enrolled processor and stays fixed for the
//! whole execution. Additionally, `2A` virtual processors `P_in_a` /
//! `P_out_a` carry the external input/output of each application.
//!
//! Three platform classes are distinguished:
//! * **fully homogeneous** — identical speed sets and a single link
//!   bandwidth `b`;
//! * **communication homogeneous** — identical links, heterogeneous speed
//!   sets (the proofs of Theorems 1 and 12 additionally allow a
//!   per-application bandwidth `b_a`, which [`Links::PerApp`] models);
//! * **fully heterogeneous** — arbitrary per-pair bandwidths.

use crate::error::ModelError;
use crate::topology::{CommTopology, MultistageNetwork, UniformComm};
use serde::{Deserialize, Serialize};

/// One multi-modal processor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Processor {
    /// Available speeds (modes) `S_u`, sorted ascending, strictly positive.
    speeds: Vec<f64>,
    /// Static energy cost `E_stat(u)` paid whenever the processor is
    /// enrolled, independently of the selected speed.
    pub e_stat: f64,
}

impl Processor {
    /// Build a processor from its speed set; speeds are sorted and deduped.
    pub fn new(mut speeds: Vec<f64>) -> Result<Self, ModelError> {
        if speeds.is_empty() {
            return Err(ModelError::InvalidProcessor { proc: usize::MAX, reason: "empty speed set" });
        }
        if speeds.iter().any(|s| !(s.is_finite() && *s > 0.0)) {
            return Err(ModelError::InvalidProcessor { proc: usize::MAX, reason: "non-positive speed" });
        }
        speeds.sort_by(|a, b| a.partial_cmp(b).expect("finite speeds"));
        speeds.dedup();
        Ok(Processor { speeds, e_stat: 0.0 })
    }

    /// Build a uni-modal processor (a single speed).
    pub fn uni_modal(speed: f64) -> Result<Self, ModelError> {
        Processor::new(vec![speed])
    }

    /// Attach a static energy cost.
    pub fn with_static_energy(mut self, e_stat: f64) -> Self {
        self.e_stat = e_stat;
        self
    }

    /// The speed set, ascending.
    #[inline]
    pub fn speeds(&self) -> &[f64] {
        &self.speeds
    }

    /// Number of modes `m_u`.
    #[inline]
    pub fn modes(&self) -> usize {
        self.speeds.len()
    }

    /// Speed of mode `m` (0-based, ascending order).
    #[inline]
    pub fn speed(&self, mode: usize) -> f64 {
        self.speeds[mode]
    }

    /// Highest speed `s_{u,m_u}`.
    #[inline]
    pub fn max_speed(&self) -> f64 {
        *self.speeds.last().expect("non-empty")
    }

    /// Lowest speed `s_{u,1}`.
    #[inline]
    pub fn min_speed(&self) -> f64 {
        self.speeds[0]
    }

    /// Smallest mode whose speed is at least `s`, if any.
    pub fn slowest_mode_at_least(&self, s: f64) -> Option<usize> {
        self.speeds.iter().position(|&sp| crate::num::ge(sp, s))
    }

    /// Whether the processor has a single mode.
    #[inline]
    pub fn is_uni_modal(&self) -> bool {
        self.speeds.len() == 1
    }
}

/// Interconnection bandwidths.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Links {
    /// A single bandwidth `b` for every link (fully homogeneous and
    /// communication homogeneous platforms).
    Uniform(f64),
    /// One bandwidth `b_a` per application, identical for all links carrying
    /// data of application `a` (the communication-homogeneous setting of the
    /// Theorem 1 greedy).
    PerApp(Vec<f64>),
    /// Fully heterogeneous bandwidths.
    Heterogeneous {
        /// `inter[u][v]` = bandwidth of the bidirectional link `P_u ↔ P_v`.
        inter: Vec<Vec<f64>>,
        /// `input[a][u]` = bandwidth `P_in_a → P_u`.
        input: Vec<Vec<f64>>,
        /// `output[a][u]` = bandwidth `P_u → P_out_a`.
        output: Vec<Vec<f64>>,
    },
}

/// Platform classification (Section 3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PlatformClass {
    /// Identical processors and identical links.
    FullyHomogeneous,
    /// Identical links, heterogeneous processors.
    CommHomogeneous,
    /// Heterogeneous processors and links.
    FullyHeterogeneous,
}

/// The target execution platform.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Platform {
    /// The `p` computation processors.
    pub procs: Vec<Processor>,
    /// Link bandwidths. Under [`CommTopology::Multistage`] this is a
    /// consistency shadow (`Links::Uniform(link_bandwidth)`); the
    /// topology owns the communication cost.
    pub links: Links,
    /// The interconnect carrying the transfers. Defaults to
    /// [`CommTopology::Dedicated`] — existing serialized platforms parse
    /// unchanged and keep their exact pre-topology semantics.
    #[serde(default)]
    pub topology: CommTopology,
}

impl Platform {
    /// Build a platform, validating bandwidths.
    pub fn new(procs: Vec<Processor>, links: Links) -> Result<Self, ModelError> {
        if procs.is_empty() {
            return Err(ModelError::InvalidProcessor { proc: 0, reason: "no processor" });
        }
        match &links {
            Links::Uniform(b) => {
                if !(b.is_finite() && *b > 0.0) {
                    return Err(ModelError::InvalidBandwidth { reason: "non-positive uniform bandwidth" });
                }
            }
            Links::PerApp(bs) => {
                if bs.is_empty() || bs.iter().any(|b| !(b.is_finite() && *b > 0.0)) {
                    return Err(ModelError::InvalidBandwidth { reason: "non-positive per-app bandwidth" });
                }
            }
            Links::Heterogeneous { inter, input, output } => {
                if inter.len() != procs.len() {
                    return Err(ModelError::DimensionMismatch { what: "inter bandwidth rows", expected: procs.len(), found: inter.len() });
                }
                for row in inter {
                    if row.len() != procs.len() {
                        return Err(ModelError::DimensionMismatch { what: "inter bandwidth cols", expected: procs.len(), found: row.len() });
                    }
                    if row.iter().any(|b| !(b.is_finite() && *b > 0.0)) {
                        return Err(ModelError::InvalidBandwidth { reason: "non-positive inter bandwidth" });
                    }
                }
                for (mat, what) in [(input, "input bandwidth"), (output, "output bandwidth")] {
                    for row in mat {
                        if row.len() != procs.len() {
                            return Err(ModelError::DimensionMismatch { what, expected: procs.len(), found: row.len() });
                        }
                        if row.iter().any(|b| !(b.is_finite() && *b > 0.0)) {
                            return Err(ModelError::InvalidBandwidth { reason: "non-positive edge bandwidth" });
                        }
                    }
                }
            }
        }
        Ok(Platform { procs, links, topology: CommTopology::Dedicated })
    }

    /// Replace the communication topology, validating its parameters.
    pub fn with_topology(mut self, topology: CommTopology) -> Result<Self, ModelError> {
        if let CommTopology::Multistage(net) = &topology {
            net.validate()?;
        }
        self.topology = topology;
        Ok(self)
    }

    /// Platform whose processors communicate through a Benes multistage
    /// interconnect. The `links` field is set to the uniform shadow
    /// `Links::Uniform(net.link_bandwidth)` for backward-compatible
    /// consumers; all communication cost is owned by the topology.
    pub fn multistage(procs: Vec<Processor>, net: MultistageNetwork) -> Result<Self, ModelError> {
        net.validate()?;
        Platform::new(procs, Links::Uniform(net.link_bandwidth))?
            .with_topology(CommTopology::Multistage(net))
    }

    /// Fully homogeneous platform: `p` copies of the same speed set, uniform
    /// bandwidth `b`, optional static energy.
    pub fn fully_homogeneous(p: usize, speeds: Vec<f64>, b: f64) -> Result<Self, ModelError> {
        let proto = Processor::new(speeds)?;
        Platform::new(vec![proto; p], Links::Uniform(b))
    }

    /// Communication homogeneous platform: given processors, uniform links.
    pub fn comm_homogeneous(procs: Vec<Processor>, b: f64) -> Result<Self, ModelError> {
        Platform::new(procs, Links::Uniform(b))
    }

    /// Number of processors `p`.
    #[inline]
    pub fn p(&self) -> usize {
        self.procs.len()
    }

    /// Bandwidth of the link `P_u ↔ P_v` carrying data of application `app`.
    #[inline]
    pub fn bw_inter(&self, app: usize, u: usize, v: usize) -> f64 {
        match &self.links {
            Links::Uniform(b) => *b,
            Links::PerApp(bs) => bs[app],
            Links::Heterogeneous { inter, .. } => inter[u][v],
        }
    }

    /// Bandwidth of `P_in_app → P_u`.
    #[inline]
    pub fn bw_input(&self, app: usize, u: usize) -> f64 {
        match &self.links {
            Links::Uniform(b) => *b,
            Links::PerApp(bs) => bs[app],
            Links::Heterogeneous { input, .. } => input[app][u],
        }
    }

    /// Bandwidth of `P_u → P_out_app`.
    #[inline]
    pub fn bw_output(&self, app: usize, u: usize) -> f64 {
        match &self.links {
            Links::Uniform(b) => *b,
            Links::PerApp(bs) => bs[app],
            Links::Heterogeneous { output, .. } => output[app][u],
        }
    }

    /// Whether the platform's interconnect is a multistage network.
    #[inline]
    pub fn is_multistage(&self) -> bool {
        self.topology.is_multistage()
    }

    /// Transfer time of the input edge `P_in_app → P_u` for `bytes` data.
    ///
    /// `Dedicated` platforms evaluate exactly `bytes / bw_input(app, u)`
    /// (the pre-topology expression, bit for bit). `Multistage` platforms
    /// use the dedicated front-end link: `bytes / link_bandwidth`, no
    /// stage traversal.
    #[inline]
    pub fn transfer_time_input(&self, app: usize, u: usize, bytes: f64) -> f64 {
        match &self.topology {
            CommTopology::Dedicated => bytes / self.bw_input(app, u),
            CommTopology::Multistage(net) => bytes / net.link_bandwidth,
        }
    }

    /// Transfer time of the inter-processor edge `P_u → P_v` for `bytes`
    /// data.
    ///
    /// `Dedicated`: exactly `bytes / bw_inter(app, u, v)`. `Multistage`:
    /// the transfer traverses all `2·log₂N − 1` switch stages —
    /// `bytes / link_bandwidth + traversal_overhead(p)` (the add is
    /// skipped entirely when the overhead is zero, preserving `-0.0`
    /// bit patterns).
    #[inline]
    pub fn transfer_time_inter(&self, app: usize, u: usize, v: usize, bytes: f64) -> f64 {
        match &self.topology {
            CommTopology::Dedicated => bytes / self.bw_inter(app, u, v),
            CommTopology::Multistage(net) => {
                let t = bytes / net.link_bandwidth;
                let overhead = net.traversal_overhead(self.p());
                if overhead != 0.0 {
                    t + overhead
                } else {
                    t
                }
            }
        }
    }

    /// Transfer time of the output edge `P_u → P_out_app` for `bytes`
    /// data. Same contract as [`Platform::transfer_time_input`].
    #[inline]
    pub fn transfer_time_output(&self, app: usize, u: usize, bytes: f64) -> f64 {
        match &self.topology {
            CommTopology::Dedicated => bytes / self.bw_output(app, u),
            CommTopology::Multistage(net) => bytes / net.link_bandwidth,
        }
    }

    /// The uniform communication structure seen by application `app`, if
    /// the platform is comm-homogeneous from that application's point of
    /// view: a single bandwidth plus a per-transfer inter-processor
    /// overhead. `None` on fully heterogeneous links (and on `PerApp`
    /// links missing an entry for `app` — see
    /// [`Platform::validate_for_apps`]).
    pub fn uniform_comm(&self, app: usize) -> Option<UniformComm> {
        match &self.topology {
            CommTopology::Multistage(net) => Some(UniformComm {
                bandwidth: net.link_bandwidth,
                inter_overhead: net.traversal_overhead(self.p()),
            }),
            CommTopology::Dedicated => match &self.links {
                Links::Uniform(b) => Some(UniformComm::dedicated(*b)),
                Links::PerApp(bs) => bs.get(app).map(|&b| UniformComm::dedicated(b)),
                Links::Heterogeneous { .. } => None,
            },
        }
    }

    /// Validate that the platform can serve an instance of `apps`
    /// applications: `PerApp` bandwidth vectors and heterogeneous
    /// input/output matrices must cover every application index. This is
    /// the instance-assembly check that turns the historical
    /// `bs[app]` out-of-bounds panic into a typed error.
    pub fn validate_for_apps(&self, apps: usize) -> Result<(), ModelError> {
        match &self.links {
            Links::Uniform(_) => Ok(()),
            Links::PerApp(bs) => {
                if bs.len() < apps {
                    Err(ModelError::DimensionMismatch {
                        what: "per-app bandwidth entries",
                        expected: apps,
                        found: bs.len(),
                    })
                } else {
                    Ok(())
                }
            }
            Links::Heterogeneous { input, output, .. } => {
                if input.len() < apps {
                    return Err(ModelError::DimensionMismatch {
                        what: "input bandwidth rows",
                        expected: apps,
                        found: input.len(),
                    });
                }
                if output.len() < apps {
                    return Err(ModelError::DimensionMismatch {
                        what: "output bandwidth rows",
                        expected: apps,
                        found: output.len(),
                    });
                }
                Ok(())
            }
        }
    }

    /// Whether every link has the same bandwidth (always true under a
    /// multistage topology: the fabric is built from identical links).
    pub fn has_homogeneous_links(&self) -> bool {
        if self.is_multistage() {
            return true;
        }
        match &self.links {
            Links::Uniform(_) => true,
            Links::PerApp(bs) => bs.windows(2).all(|w| w[0] == w[1]),
            Links::Heterogeneous { inter, input, output } => {
                let mut all = inter.iter().chain(input).chain(output).flatten();
                match all.next() {
                    None => true,
                    Some(first) => all.all(|b| b == first),
                }
            }
        }
    }

    /// Whether all processors share the same speed set and static energy.
    pub fn has_homogeneous_processors(&self) -> bool {
        self.procs.windows(2).all(|w| w[0] == w[1])
    }

    /// Classify per Section 3.2.
    pub fn class(&self) -> PlatformClass {
        if self.has_homogeneous_links() {
            if self.has_homogeneous_processors() {
                PlatformClass::FullyHomogeneous
            } else {
                PlatformClass::CommHomogeneous
            }
        } else {
            PlatformClass::FullyHeterogeneous
        }
    }

    /// Whether every processor is uni-modal (single speed).
    pub fn is_uni_modal(&self) -> bool {
        self.procs.iter().all(Processor::is_uni_modal)
    }

    /// Indices of processors sorted by ascending maximal speed (ties by
    /// index). Used by the greedy procedures of Theorems 1 and 12.
    pub fn procs_by_max_speed(&self) -> Vec<usize> {
        let mut idx: Vec<usize> = (0..self.p()).collect();
        idx.sort_by(|&a, &b| {
            self.procs[a]
                .max_speed()
                .partial_cmp(&self.procs[b].max_speed())
                .expect("finite speeds")
                .then(a.cmp(&b))
        });
        idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn processor_sorts_and_dedups_speeds() {
        let p = Processor::new(vec![6.0, 3.0, 3.0]).unwrap();
        assert_eq!(p.speeds(), &[3.0, 6.0]);
        assert_eq!(p.modes(), 2);
        assert_eq!(p.min_speed(), 3.0);
        assert_eq!(p.max_speed(), 6.0);
        assert_eq!(p.slowest_mode_at_least(4.0), Some(1));
        assert_eq!(p.slowest_mode_at_least(3.0), Some(0));
        assert_eq!(p.slowest_mode_at_least(7.0), None);
    }

    #[test]
    fn rejects_bad_processors_and_links() {
        assert!(Processor::new(vec![]).is_err());
        assert!(Processor::new(vec![0.0]).is_err());
        assert!(Processor::new(vec![-1.0]).is_err());
        assert!(Platform::fully_homogeneous(2, vec![1.0], 0.0).is_err());
        assert!(Platform::new(vec![], Links::Uniform(1.0)).is_err());
        let p = Processor::uni_modal(1.0).unwrap();
        let bad = Links::Heterogeneous { inter: vec![vec![1.0]], input: vec![], output: vec![] };
        assert!(Platform::new(vec![p.clone(), p], bad).is_err());
    }

    #[test]
    fn classification() {
        let fh = Platform::fully_homogeneous(3, vec![1.0, 2.0], 1.0).unwrap();
        assert_eq!(fh.class(), PlatformClass::FullyHomogeneous);
        assert!(!fh.is_uni_modal());

        let ch = Platform::comm_homogeneous(
            vec![Processor::uni_modal(1.0).unwrap(), Processor::uni_modal(2.0).unwrap()],
            1.0,
        )
        .unwrap();
        assert_eq!(ch.class(), PlatformClass::CommHomogeneous);
        assert!(ch.is_uni_modal());

        let het = Platform::new(
            vec![Processor::uni_modal(1.0).unwrap(), Processor::uni_modal(2.0).unwrap()],
            Links::Heterogeneous {
                inter: vec![vec![1.0, 2.0], vec![2.0, 1.0]],
                input: vec![vec![1.0, 1.0]],
                output: vec![vec![1.0, 1.0]],
            },
        )
        .unwrap();
        assert_eq!(het.class(), PlatformClass::FullyHeterogeneous);
    }

    #[test]
    fn per_app_links_classify_as_heterogeneous_unless_equal() {
        let procs = vec![Processor::uni_modal(1.0).unwrap(); 2];
        let pa = Platform::new(procs.clone(), Links::PerApp(vec![1.0, 1.0])).unwrap();
        assert_eq!(pa.class(), PlatformClass::FullyHomogeneous);
        let pa2 = Platform::new(procs, Links::PerApp(vec![1.0, 2.0])).unwrap();
        assert_eq!(pa2.class(), PlatformClass::FullyHeterogeneous);
        assert_eq!(pa2.bw_inter(1, 0, 1), 2.0);
        assert_eq!(pa2.bw_input(0, 1), 1.0);
    }

    #[test]
    fn multistage_platform_basics() {
        let net = MultistageNetwork::new(2.0, 0.5).unwrap();
        let pf = Platform::multistage(vec![Processor::uni_modal(1.0).unwrap(); 4], net).unwrap();
        assert!(pf.is_multistage());
        assert!(pf.has_homogeneous_links());
        assert_eq!(pf.class(), PlatformClass::FullyHomogeneous);
        // I/O edges bypass the fabric; inter edges pay 3 stages × 0.5.
        assert_eq!(pf.transfer_time_input(0, 2, 4.0), 2.0);
        assert_eq!(pf.transfer_time_output(0, 2, 4.0), 2.0);
        assert_eq!(pf.transfer_time_inter(0, 1, 2, 4.0), 3.5);
        let uc = pf.uniform_comm(0).unwrap();
        assert_eq!(uc.bandwidth, 2.0);
        assert_eq!(uc.inter_overhead, 1.5);
        // The links shadow mirrors the fabric bandwidth.
        assert_eq!(pf.links, Links::Uniform(2.0));
        assert!(Platform::multistage(
            vec![Processor::uni_modal(1.0).unwrap()],
            MultistageNetwork { link_bandwidth: 0.0, hop_latency: 0.0 },
        )
        .is_err());
    }

    #[test]
    fn dedicated_transfer_times_are_the_bare_divisions() {
        let pf = Platform::fully_homogeneous(3, vec![1.0], 2.0).unwrap();
        assert!(!pf.is_multistage());
        for bytes in [0.0, -0.0, 3.0, 7.5] {
            assert_eq!(
                pf.transfer_time_input(0, 1, bytes).to_bits(),
                (bytes / 2.0).to_bits()
            );
            assert_eq!(
                pf.transfer_time_inter(0, 0, 1, bytes).to_bits(),
                (bytes / 2.0).to_bits()
            );
            assert_eq!(
                pf.transfer_time_output(0, 2, bytes).to_bits(),
                (bytes / 2.0).to_bits()
            );
        }
    }

    #[test]
    fn validate_for_apps_covers_per_app_and_heterogeneous() {
        let procs = vec![Processor::uni_modal(1.0).unwrap(); 2];
        let pa = Platform::new(procs.clone(), Links::PerApp(vec![1.0])).unwrap();
        assert!(pa.validate_for_apps(1).is_ok());
        assert!(matches!(
            pa.validate_for_apps(2),
            Err(ModelError::DimensionMismatch { expected: 2, found: 1, .. })
        ));
        assert!(pa.uniform_comm(1).is_none());
        let het = Platform::new(
            procs.clone(),
            Links::Heterogeneous {
                inter: vec![vec![1.0, 1.0], vec![1.0, 1.0]],
                input: vec![vec![1.0, 1.0]],
                output: vec![vec![1.0, 1.0]],
            },
        )
        .unwrap();
        assert!(het.validate_for_apps(1).is_ok());
        assert!(het.validate_for_apps(2).is_err());
        let uni = Platform::new(procs, Links::Uniform(1.0)).unwrap();
        assert!(uni.validate_for_apps(100).is_ok());
    }

    #[test]
    fn procs_sorted_by_speed() {
        let pf = Platform::comm_homogeneous(
            vec![
                Processor::uni_modal(5.0).unwrap(),
                Processor::uni_modal(1.0).unwrap(),
                Processor::uni_modal(3.0).unwrap(),
            ],
            1.0,
        )
        .unwrap();
        assert_eq!(pf.procs_by_max_speed(), vec![1, 2, 0]);
    }
}
