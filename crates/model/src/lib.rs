//! # cpo-model — applicative and platform model
//!
//! This crate implements the *framework* of Section 3 of
//! Benoit, Renaud-Goud, Robert, *"Performance and energy optimization of
//! concurrent pipelined applications"* (LIP RR-2009-27 / IPDPS 2010):
//!
//! * **Applications** (Section 3.1): `A` independent linear-chain workflows.
//!   Application `a` has `n_a` stages; stage `S_a^k` has computation
//!   requirement `w_a^k` and output data size `δ_a^k`; the chain reads an
//!   input of size `δ_a^0` and writes a result of size `δ_a^{n_a}`.
//! * **Platforms** (Section 3.2): `p` fully interconnected multi-modal
//!   processors. Each processor owns a discrete set of speeds (modes); one
//!   speed is selected per enrolled processor and is fixed for the whole
//!   execution. Links have bandwidths; three platform classes are
//!   distinguished (fully homogeneous, communication homogeneous, fully
//!   heterogeneous).
//! * **Mappings** (Section 3.3): one-to-one and interval mappings, with no
//!   processor sharing across intervals or applications.
//! * **Objectives** (Sections 3.4, 3.5): period (Eqs. 3 and 4 for the
//!   overlap / no-overlap communication models), latency (Eq. 5), weighted
//!   global aggregation (Eq. 6) and the energy model
//!   `E(u) = E_stat(u) + s_u^α`.
//!
//! The crate also ships deterministic random instance generators
//! ([`generator`]), the NP-hardness reduction gadgets used by the paper's
//! proofs ([`gadgets`]), and the two Section 6 future-work extensions:
//! replicated intervals ([`replication`]) and general mappings with
//! processor sharing ([`sharing`]).

pub mod application;
pub mod bundle;
pub mod energy;
pub mod error;
pub mod eval;
pub mod gadgets;
pub mod generator;
pub mod hash;
pub mod io;
pub mod mapping;
pub mod num;
pub mod objective;
pub mod platform;
pub mod replication;
pub mod sharing;
pub mod spec;
pub mod topology;

pub use application::{AppSet, Application, Stage};
pub use bundle::{
    BundleSource, EngineSnapshot, FailureContext, FailureKind, GenRecipe, Obs, PathObservation,
    PlatformKind, ReproBundle, BUNDLE_VERSION,
};
pub use energy::EnergyModel;
pub use error::ModelError;
pub use eval::{CommModel, Evaluation, Evaluator};
pub use mapping::{Assignment, Interval, Mapping};
pub use objective::{Aggregation, Thresholds};
pub use platform::{Links, Platform, PlatformClass, Processor};
pub use spec::{
    Objective, ProblemSpec, SolveOutcome, SolveRequest, SolvedMapping, SolvedPoint, SolverHints,
    Strategy,
};
pub use topology::{CommTopology, MultistageNetwork, UniformComm};

/// Convenient prelude bringing the whole model vocabulary into scope.
pub mod prelude {
    pub use crate::application::{AppSet, Application, Stage};
    pub use crate::bundle::{
        BundleSource, EngineSnapshot, FailureContext, FailureKind, GenRecipe, Obs,
        PathObservation, PlatformKind, ReproBundle, BUNDLE_VERSION,
    };
    pub use crate::energy::EnergyModel;
    pub use crate::error::ModelError;
    pub use crate::eval::{CommModel, Evaluation, Evaluator};
    pub use crate::mapping::{Assignment, Interval, Mapping};
    pub use crate::objective::{Aggregation, Thresholds};
    pub use crate::platform::{Links, Platform, PlatformClass, Processor};
    pub use crate::spec::{
        FrontEntry, Objective, ProblemSpec, SolveOutcome, SolveRequest, SolvedMapping,
        SolvedPoint, SolverHints, Strategy,
    };
    pub use crate::topology::{CommTopology, MultistageNetwork, UniformComm};
}
