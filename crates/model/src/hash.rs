//! Cheap, deterministic 128-bit structural hashing of instances and
//! specs.
//!
//! The batch engine memoizes solve outcomes keyed on *(instance, spec)*.
//! Serializing both to canonical JSON made the key exact but cost more
//! than many of the solves it was meant to skip; this module replaces it
//! with a single pass over the structure feeding every scalar (f64 bit
//! patterns, lengths, enum discriminants) into two independently mixed
//! 64-bit lanes. The resulting 128-bit digest is:
//!
//! * **deterministic across runs and processes** (fixed seeds, no
//!   `RandomState`), so cache behavior is reproducible;
//! * **structure-sensitive**: lengths and discriminant tags are hashed
//!   before their payloads, so `[1.0, 2.0] ++ []` and `[1.0] ++ [2.0]`
//!   differ, as do `None` and `Some(0)`;
//! * **collision-safe in practice**: with two independent 64-bit lanes a
//!   false cache hit needs a full 128-bit collision between two *live*
//!   keys — probability ≈ `k²/2^129` for `k` cached entries, i.e.
//!   negligible next to cosmic-ray rates for any feasible cache size.
//!   (The hash is *not* adversarially secure; the cache is a performance
//!   device over the caller's own workload, not a trust boundary.)

use crate::application::{AppSet, Application, Stage};
use crate::eval::CommModel;
use crate::mapping::{Assignment, Interval, Mapping};
use crate::objective::Thresholds;
use crate::platform::{Links, Platform, Processor};
use crate::replication::{ReplicatedAssignment, ReplicatedMapping};
use crate::sharing::{GeneralMapping, SharedAssignment};
use crate::spec::{
    FrontEntry, Objective, ProblemSpec, SolveOutcome, SolvedMapping, SolvedPoint, SolverHints,
    Strategy,
};
use crate::topology::CommTopology;

/// splitmix64 finalizer: a full-avalanche 64-bit mixer.
fn mix(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Two-lane structural hasher (see the module docs).
#[derive(Debug, Clone)]
pub struct StructuralHasher {
    a: u64,
    b: u64,
}

impl Default for StructuralHasher {
    fn default() -> Self {
        StructuralHasher::new()
    }
}

impl StructuralHasher {
    /// Fresh hasher with the fixed seeds.
    pub fn new() -> Self {
        StructuralHasher { a: 0x9E37_79B9_7F4A_7C15, b: 0xC2B2_AE3D_27D4_EB4F }
    }

    /// Feed one 64-bit word.
    pub fn write_u64(&mut self, v: u64) {
        self.a = mix(self.a ^ v);
        self.b = mix(self.b.rotate_left(23) ^ v.wrapping_mul(0xA24B_AED4_963E_E407));
    }

    /// Feed an f64 by bit pattern (`-0.0 ≠ 0.0`, NaN payloads distinct —
    /// exactly the distinctions bitwise-deterministic solvers care about).
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// Feed a length / index.
    pub fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    /// Feed a bool.
    pub fn write_bool(&mut self, v: bool) {
        self.write_u64(u64::from(v));
    }

    /// Feed a string (length-prefixed, 8 bytes per word).
    pub fn write_str(&mut self, s: &str) {
        self.write_usize(s.len());
        for chunk in s.as_bytes().chunks(8) {
            let mut w = [0u8; 8];
            w[..chunk.len()].copy_from_slice(chunk);
            self.write_u64(u64::from_le_bytes(w));
        }
    }

    /// Feed an optional f64 (tagged).
    pub fn write_opt_f64(&mut self, v: Option<f64>) {
        match v {
            None => self.write_u64(0),
            Some(x) => {
                self.write_u64(1);
                self.write_f64(x);
            }
        }
    }

    /// Feed an optional f64 slice (tagged + length-prefixed).
    pub fn write_opt_slice(&mut self, v: Option<&[f64]>) {
        match v {
            None => self.write_u64(0),
            Some(xs) => {
                self.write_u64(1);
                self.write_usize(xs.len());
                for &x in xs {
                    self.write_f64(x);
                }
            }
        }
    }

    /// The 128-bit digest.
    pub fn finish(&self) -> u128 {
        ((self.a as u128) << 64) | self.b as u128
    }
}

/// Types with a stable structural hash (every semantically meaningful
/// field, in declaration order — mirrors the derived `PartialEq`).
pub trait StableHash {
    /// Feed this value into `h`.
    fn stable_hash(&self, h: &mut StructuralHasher);
}

impl StableHash for Stage {
    fn stable_hash(&self, h: &mut StructuralHasher) {
        h.write_f64(self.work);
        h.write_f64(self.output);
    }
}

impl StableHash for Application {
    fn stable_hash(&self, h: &mut StructuralHasher) {
        h.write_f64(self.input);
        h.write_usize(self.stages.len());
        for s in &self.stages {
            s.stable_hash(h);
        }
        h.write_f64(self.weight);
        h.write_str(&self.name);
    }
}

impl StableHash for AppSet {
    fn stable_hash(&self, h: &mut StructuralHasher) {
        h.write_usize(self.apps.len());
        for a in &self.apps {
            a.stable_hash(h);
        }
    }
}

impl StableHash for Processor {
    fn stable_hash(&self, h: &mut StructuralHasher) {
        h.write_usize(self.modes());
        for &s in self.speeds() {
            h.write_f64(s);
        }
        h.write_f64(self.e_stat);
    }
}

impl StableHash for Links {
    fn stable_hash(&self, h: &mut StructuralHasher) {
        match self {
            Links::Uniform(b) => {
                h.write_u64(0);
                h.write_f64(*b);
            }
            Links::PerApp(bs) => {
                h.write_u64(1);
                h.write_usize(bs.len());
                for &b in bs {
                    h.write_f64(b);
                }
            }
            Links::Heterogeneous { inter, input, output } => {
                h.write_u64(2);
                for table in [inter, input, output] {
                    h.write_usize(table.len());
                    for row in table {
                        h.write_usize(row.len());
                        for &b in row {
                            h.write_f64(b);
                        }
                    }
                }
            }
        }
    }
}

impl StableHash for CommTopology {
    fn stable_hash(&self, h: &mut StructuralHasher) {
        match self {
            CommTopology::Dedicated => h.write_u64(0),
            CommTopology::Multistage(net) => {
                h.write_u64(1);
                h.write_f64(net.link_bandwidth);
                h.write_f64(net.hop_latency);
            }
        }
    }
}

impl StableHash for Platform {
    fn stable_hash(&self, h: &mut StructuralHasher) {
        h.write_usize(self.procs.len());
        for p in &self.procs {
            p.stable_hash(h);
        }
        self.links.stable_hash(h);
        self.topology.stable_hash(h);
    }
}

impl StableHash for CommModel {
    fn stable_hash(&self, h: &mut StructuralHasher) {
        h.write_u64(match self {
            CommModel::Overlap => 0,
            CommModel::NoOverlap => 1,
        });
    }
}

impl StableHash for Objective {
    fn stable_hash(&self, h: &mut StructuralHasher) {
        h.write_u64(match self {
            Objective::Period => 0,
            Objective::Latency => 1,
            Objective::Energy => 2,
            Objective::PeriodEnergyFront => 3,
            Objective::PeriodLatencyFront => 4,
        });
    }
}

impl StableHash for Strategy {
    fn stable_hash(&self, h: &mut StructuralHasher) {
        h.write_u64(match self {
            Strategy::OneToOne => 0,
            Strategy::Interval => 1,
            Strategy::Replicated => 2,
            Strategy::General => 3,
        });
    }
}

impl StableHash for Thresholds {
    fn stable_hash(&self, h: &mut StructuralHasher) {
        h.write_opt_slice(self.period.as_deref());
        h.write_opt_slice(self.latency.as_deref());
        h.write_opt_f64(self.energy);
    }
}

impl StableHash for SolverHints {
    fn stable_hash(&self, h: &mut StructuralHasher) {
        h.write_bool(self.exact_fallback);
        h.write_bool(self.heuristic_fallback);
        match self.sweep_threads {
            None => h.write_u64(0),
            Some(n) => {
                h.write_u64(1);
                h.write_usize(n);
            }
        }
        match self.local_search_iterations {
            None => h.write_u64(0),
            Some(n) => {
                h.write_u64(1);
                h.write_usize(n);
            }
        }
        match self.seed {
            None => h.write_u64(0),
            Some(s) => {
                h.write_u64(1);
                h.write_u64(s);
            }
        }
    }
}

impl StableHash for ProblemSpec {
    fn stable_hash(&self, h: &mut StructuralHasher) {
        h.write_u64(u64::from(self.version));
        self.objective.stable_hash(h);
        self.strategy.stable_hash(h);
        self.comm.stable_hash(h);
        self.constraints.stable_hash(h);
        self.hints.stable_hash(h);
    }
}

impl StableHash for Interval {
    fn stable_hash(&self, h: &mut StructuralHasher) {
        h.write_usize(self.app);
        h.write_usize(self.first);
        h.write_usize(self.last);
    }
}

impl StableHash for Assignment {
    fn stable_hash(&self, h: &mut StructuralHasher) {
        self.interval.stable_hash(h);
        h.write_usize(self.proc);
        h.write_usize(self.mode);
    }
}

impl StableHash for Mapping {
    fn stable_hash(&self, h: &mut StructuralHasher) {
        h.write_usize(self.assignments.len());
        for a in &self.assignments {
            a.stable_hash(h);
        }
    }
}

impl StableHash for ReplicatedAssignment {
    fn stable_hash(&self, h: &mut StructuralHasher) {
        self.interval.stable_hash(h);
        h.write_usize(self.procs.len());
        for &p in &self.procs {
            h.write_usize(p);
        }
        h.write_usize(self.modes.len());
        for &m in &self.modes {
            h.write_usize(m);
        }
    }
}

impl StableHash for ReplicatedMapping {
    fn stable_hash(&self, h: &mut StructuralHasher) {
        h.write_usize(self.assignments.len());
        for a in &self.assignments {
            a.stable_hash(h);
        }
    }
}

impl StableHash for SharedAssignment {
    fn stable_hash(&self, h: &mut StructuralHasher) {
        self.interval.stable_hash(h);
        h.write_usize(self.proc);
        h.write_usize(self.mode);
    }
}

impl StableHash for GeneralMapping {
    fn stable_hash(&self, h: &mut StructuralHasher) {
        h.write_usize(self.assignments.len());
        for a in &self.assignments {
            a.stable_hash(h);
        }
    }
}

impl StableHash for SolvedMapping {
    fn stable_hash(&self, h: &mut StructuralHasher) {
        match self {
            SolvedMapping::Plain(m) => {
                h.write_u64(0);
                m.stable_hash(h);
            }
            SolvedMapping::Replicated(m) => {
                h.write_u64(1);
                m.stable_hash(h);
            }
            SolvedMapping::General(m) => {
                h.write_u64(2);
                m.stable_hash(h);
            }
        }
    }
}

impl StableHash for SolvedPoint {
    fn stable_hash(&self, h: &mut StructuralHasher) {
        h.write_f64(self.objective);
        self.mapping.stable_hash(h);
    }
}

impl StableHash for FrontEntry {
    fn stable_hash(&self, h: &mut StructuralHasher) {
        h.write_f64(self.achieved);
        h.write_f64(self.objective);
        self.mapping.stable_hash(h);
    }
}

impl StableHash for SolveOutcome {
    fn stable_hash(&self, h: &mut StructuralHasher) {
        match self {
            SolveOutcome::Solution(p) => {
                h.write_u64(0);
                p.stable_hash(h);
            }
            SolveOutcome::Front(entries) => {
                h.write_u64(1);
                h.write_usize(entries.len());
                for e in entries {
                    e.stable_hash(h);
                }
            }
            SolveOutcome::Infeasible { reason } => {
                h.write_u64(2);
                h.write_str(reason);
            }
            SolveOutcome::Unsupported { reason } => {
                h.write_u64(3);
                h.write_str(reason);
            }
        }
    }
}

/// 128-bit digest of an instance (applications + platform).
pub fn hash_instance(apps: &AppSet, platform: &Platform) -> u128 {
    let mut h = StructuralHasher::new();
    apps.stable_hash(&mut h);
    platform.stable_hash(&mut h);
    h.finish()
}

/// 128-bit digest of a problem spec.
pub fn hash_spec(spec: &ProblemSpec) -> u128 {
    let mut h = StructuralHasher::new();
    spec.stable_hash(&mut h);
    h.finish()
}

/// 128-bit digest of a solve outcome — every field bitwise (objectives and
/// front points by f64 bit pattern, mappings structurally), so two
/// outcomes digest equal iff they are bit-for-bit the same answer. This is
/// what repro bundles record and what `replay` compares: it survives NaN
/// contamination that JSON round-trips cannot represent.
pub fn hash_outcome(outcome: &SolveOutcome) -> u128 {
    let mut h = StructuralHasher::new();
    outcome.stable_hash(&mut h);
    h.finish()
}

/// Canonical lower-hex rendering of a 128-bit digest (for bundles, file
/// names and structured panic reasons).
pub fn digest_hex(d: u128) -> String {
    format!("{d:032x}")
}

/// Parse [`digest_hex`] output back (accepts an optional `0x` prefix).
pub fn parse_digest_hex(s: &str) -> Option<u128> {
    u128::from_str_radix(s.trim_start_matches("0x"), 16).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::section2_example;

    fn spec() -> ProblemSpec {
        ProblemSpec::new(Objective::Energy, Strategy::Interval, CommModel::Overlap)
            .with_period_bounds(vec![2.0, 2.5])
    }

    #[test]
    fn equal_values_hash_equal() {
        let (apps, pf) = section2_example();
        assert_eq!(hash_instance(&apps, &pf), hash_instance(&apps.clone(), &pf.clone()));
        assert_eq!(hash_spec(&spec()), hash_spec(&spec()));
    }

    #[test]
    fn every_field_perturbation_changes_the_digest() {
        let (apps, pf) = section2_example();
        let base = hash_instance(&apps, &pf);

        let mut w = apps.clone();
        w.apps[0].stages[0].work += 1.0;
        assert_ne!(hash_instance(&w, &pf), base);

        let mut o = apps.clone();
        o.apps[1].stages[2].output += 0.5;
        assert_ne!(hash_instance(&o, &pf), base);

        let mut wt = apps.clone();
        wt.apps[0].weight = 2.0;
        assert_ne!(hash_instance(&wt, &pf), base);

        let mut pm = pf.clone();
        pm.procs[0].e_stat += 1.0;
        assert_ne!(hash_instance(&apps, &pm), base);

        let bigger = Platform::fully_homogeneous(pf.p() + 1, vec![1.0, 2.0], 1.0).unwrap();
        assert_ne!(hash_instance(&apps, &bigger), base);
    }

    #[test]
    fn spec_digest_covers_constraints_and_hints() {
        let base = hash_spec(&spec());
        let mut s = spec();
        s.constraints.period = Some(vec![2.0, 2.500000001]);
        assert_ne!(hash_spec(&s), base);
        let mut s = spec();
        s.constraints.energy = Some(10.0);
        assert_ne!(hash_spec(&s), base);
        let mut s = spec();
        s.hints.exact_fallback = true;
        assert_ne!(hash_spec(&s), base);
        let mut s = spec();
        s.hints.sweep_threads = Some(2);
        assert_ne!(hash_spec(&s), base);
        let mut s = spec();
        s.comm = CommModel::NoOverlap;
        assert_ne!(hash_spec(&s), base);
        let mut s = spec();
        s.objective = Objective::Latency;
        assert_ne!(hash_spec(&s), base);
    }

    #[test]
    fn structure_is_not_flattened_away() {
        // Moving a value across a boundary must change the digest even
        // though the flat scalar stream would look similar.
        let mut h1 = StructuralHasher::new();
        h1.write_opt_slice(Some(&[1.0, 2.0]));
        h1.write_opt_slice(Some(&[]));
        let mut h2 = StructuralHasher::new();
        h2.write_opt_slice(Some(&[1.0]));
        h2.write_opt_slice(Some(&[2.0]));
        assert_ne!(h1.finish(), h2.finish());

        let mut h3 = StructuralHasher::new();
        h3.write_opt_f64(None);
        let mut h4 = StructuralHasher::new();
        h4.write_opt_f64(Some(0.0));
        assert_ne!(h3.finish(), h4.finish());
    }

    #[test]
    fn topology_variants_produce_distinct_digests() {
        use crate::topology::MultistageNetwork;
        let (apps, pf) = section2_example();
        let dedicated = hash_instance(&apps, &pf);

        let net = MultistageNetwork::new(1.0, 0.0).unwrap();
        let ms = pf.clone().with_topology(CommTopology::Multistage(net)).unwrap();
        let multistage = hash_instance(&apps, &ms);
        assert_ne!(dedicated, multistage, "topology tag must enter the digest");

        // Every network field perturbation changes the digest.
        let mut faster = ms.clone();
        faster.topology =
            CommTopology::Multistage(MultistageNetwork::new(2.0, 0.0).unwrap());
        assert_ne!(hash_instance(&apps, &faster), multistage);
        let mut laggy = ms.clone();
        laggy.topology =
            CommTopology::Multistage(MultistageNetwork::new(1.0, 0.25).unwrap());
        assert_ne!(hash_instance(&apps, &laggy), multistage);

        // Same -0.0 / NaN bit discipline as the Links fields: hop
        // latencies 0.0 and -0.0 are distinct digests, and NaN hashes
        // stably by bit pattern.
        let mut neg = ms.clone();
        neg.topology = CommTopology::Multistage(MultistageNetwork {
            link_bandwidth: 1.0,
            hop_latency: -0.0,
        });
        assert_ne!(hash_instance(&apps, &neg), multistage);
        let nan = CommTopology::Multistage(MultistageNetwork {
            link_bandwidth: 1.0,
            hop_latency: f64::NAN,
        });
        let mut h1 = StructuralHasher::new();
        nan.stable_hash(&mut h1);
        let mut h2 = StructuralHasher::new();
        nan.stable_hash(&mut h2);
        assert_eq!(h1.finish(), h2.finish(), "NaN hashes by bit pattern");
    }

    #[test]
    fn zero_and_negative_zero_differ() {
        let mut h1 = StructuralHasher::new();
        h1.write_f64(0.0);
        let mut h2 = StructuralHasher::new();
        h2.write_f64(-0.0);
        assert_ne!(h1.finish(), h2.finish());
    }
}
