//! Floating-point comparison helpers.
//!
//! All quantities in the model (computation requirements `w`, data sizes
//! `δ`, speeds `s`, bandwidths `b`) are `f64`. The paper's algorithms binary
//! search over *finite candidate sets* of objective values that are computed
//! by fixed closed-form expressions; feasibility probes then compare
//! quantities produced by the *same* expressions, so a small relative
//! tolerance is sufficient for robustness. Every tolerance-sensitive
//! comparison in the workspace goes through this module so the policy lives
//! in one place.

/// Relative/absolute tolerance used by feasibility probes.
pub const EPS: f64 = 1e-9;

/// `a <= b` up to the shared tolerance.
///
/// Uses a mixed absolute/relative criterion: the slack grows with the
/// magnitude of the operands so that large objective values (long pipelines,
/// slow processors) do not produce spurious infeasibility.
#[inline]
pub fn le(a: f64, b: f64) -> bool {
    if a.is_infinite() || b.is_infinite() {
        return a <= b;
    }
    a <= b + EPS * (1.0 + a.abs().max(b.abs()))
}

/// `a >= b` up to the shared tolerance.
#[inline]
pub fn ge(a: f64, b: f64) -> bool {
    le(b, a)
}

/// `a == b` up to the shared tolerance.
#[inline]
pub fn approx_eq(a: f64, b: f64) -> bool {
    if a.is_infinite() || b.is_infinite() {
        return a == b;
    }
    (a - b).abs() <= EPS * (1.0 + a.abs().max(b.abs()))
}

/// Strictly less, with tolerance (`a < b` and not `approx_eq`).
#[inline]
pub fn lt(a: f64, b: f64) -> bool {
    a < b && !approx_eq(a, b)
}

/// Sort a candidate-value array ascending and remove duplicates (up to the
/// shared tolerance). Used to build the candidate sets `T` and `L` of
/// Theorems 1, 12 and 15 before binary searching them.
pub fn sorted_candidates(mut values: Vec<f64>) -> Vec<f64> {
    values.retain(|v| v.is_finite());
    values.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
    values.dedup_by(|a, b| approx_eq(*a, *b));
    values
}

/// Minimum of two floats where `NaN` never wins (used when folding
/// objective values that may contain `f64::INFINITY` sentinels).
#[inline]
pub fn fmin(a: f64, b: f64) -> f64 {
    if a < b {
        a
    } else {
        b
    }
}

/// Maximum counterpart of [`fmin`].
#[inline]
pub fn fmax(a: f64, b: f64) -> f64 {
    if a > b {
        a
    } else {
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn le_is_tolerant() {
        assert!(le(1.0 + 1e-12, 1.0));
        assert!(le(1.0, 1.0));
        assert!(!le(1.0 + 1e-6, 1.0));
    }

    #[test]
    fn le_scales_with_magnitude() {
        let big = 1e12;
        assert!(le(big * (1.0 + 1e-11), big));
        assert!(!le(big * (1.0 + 1e-6), big));
    }

    #[test]
    fn le_handles_infinities() {
        assert!(!le(f64::INFINITY, 1.0));
        assert!(le(1.0, f64::INFINITY));
        assert!(le(f64::INFINITY, f64::INFINITY));
        assert!(!ge(1.0, f64::INFINITY));
        assert!(ge(f64::INFINITY, 1.0));
    }

    #[test]
    fn approx_eq_handles_infinities() {
        assert!(approx_eq(f64::INFINITY, f64::INFINITY));
        assert!(!approx_eq(f64::INFINITY, 1.0));
        assert!(!approx_eq(1.0, f64::INFINITY));
    }

    #[test]
    fn sorted_candidates_dedups() {
        let c = sorted_candidates(vec![3.0, 1.0, 1.0 + 1e-13, 2.0, f64::INFINITY]);
        assert_eq!(c, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn fmin_fmax_ignore_nan_ordering() {
        assert_eq!(fmin(1.0, 2.0), 1.0);
        assert_eq!(fmax(1.0, 2.0), 2.0);
        assert_eq!(fmin(f64::INFINITY, 2.0), 2.0);
    }

    #[test]
    fn lt_is_strict() {
        assert!(lt(1.0, 2.0));
        assert!(!lt(1.0, 1.0 + 1e-13));
    }
}
